package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/pdftsp/pdftsp/internal/sim"
	"github.com/pdftsp/pdftsp/internal/task"
)

// walSupervisor wires a supervisor whose generations are journaled,
// checkpointed brokers rebuilt from seed-deterministic twin stacks. The
// returned channel signals each completed restart; lastStack tracks the
// serving generation's stack for final dual diffs.
func walSupervisor(t *testing.T, slots int, seed int64) (*Supervisor, chan int, *[]*testStack) {
	t.Helper()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sup.ckpt")
	stacks := &[]*testStack{}
	build := func() (Auctioneer, error) {
		s := newStack(t, slots, 2, 3, seed)
		opts := s.brokerOptions()
		opts.CheckpointPath = ckpt
		opts.CheckpointEvery = 1
		opts.WALPath = WALPath(ckpt)
		b, err := New(opts)
		if err != nil {
			return nil, err
		}
		if _, err := os.Stat(ckpt); err == nil {
			ck, err := LoadCheckpoint(ckpt)
			if err != nil {
				return nil, err
			}
			if err := b.Restore(ck); err != nil {
				return nil, err
			}
		}
		if _, err := b.RecoverWAL(); err != nil {
			return nil, err
		}
		if err := b.Start(); err != nil {
			return nil, err
		}
		*stacks = append(*stacks, s)
		return b, nil
	}
	restarted := make(chan int, 8)
	sup, err := NewSupervisor(SupervisorOptions{
		Build:         build,
		ProbeInterval: 5 * time.Millisecond,
		WedgeTimeout:  200 * time.Millisecond,
		RestartWait:   10 * time.Second,
		OnRestart:     func(gen int, reason string) { restarted <- gen },
	})
	if err != nil {
		t.Fatal(err)
	}
	return sup, restarted, stacks
}

func awaitRestart(t *testing.T, restarted chan int) {
	t.Helper()
	select {
	case <-restarted:
	case <-time.After(10 * time.Second):
		t.Fatal("no supervised restart within 10s")
	}
}

// TestSupervisorAckBoundaryKill is the in-package half of the wal-chaos
// harness: a generation is crash-stopped after acking a batch but before
// its slot closes — twice at one slot, so the second recovery re-replays
// an already-replayed journal — and the supervised run must finish with
// every acked bid decided, bit-identical to a sequential sim.Run.
func TestSupervisorAckBoundaryKill(t *testing.T) {
	const slots, killAt = 8, 3
	const seed = 9
	sup, restarted, stacks := walSupervisor(t, slots, seed)
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Kill()

	ref := newStack(t, slots, 2, 3, seed)
	perSlot := make([][]task.Task, slots)
	for _, tk := range ref.tasks {
		perSlot[tk.Arrival] = append(perSlot[tk.Arrival], tk)
	}
	acked := map[int]bool{}
	for slot := 0; slot < slots; slot++ {
		batch := perSlot[slot]
		if len(batch) > 0 {
			verdicts := make([]error, len(batch))
			if _, err := sup.SubmitBatchAck(context.Background(), batch, verdicts); err != nil {
				t.Fatalf("submit at slot %d: %v", slot, err)
			}
			for i, v := range verdicts {
				if v != nil {
					t.Fatalf("task %d refused at slot %d: %v", batch[i].ID, slot, v)
				}
				acked[batch[i].ID] = true
			}
		}
		if slot == killAt {
			for kill := 0; kill < 2; kill++ {
				for _, b := range sup.Brokers() {
					b.Kill()
				}
				awaitRestart(t, restarted)
				if got, err := sup.Slot(); err != nil || got != slot {
					t.Fatalf("restored generation at slot %d (err %v), want %d", got, err, slot)
				}
			}
		}
		if _, err := sup.Step(1); err != nil {
			t.Fatalf("step at slot %d: %v", slot, err)
		}
	}
	if got := sup.Restarts(); got != 2 {
		t.Fatalf("Restarts() = %d, want 2", got)
	}
	brokers := sup.Brokers()
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sup.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}

	for id := range acked {
		if _, ok, err := brokers[0].DecisionFor(id); err != nil || !ok {
			t.Fatalf("acked bid %d lost across supervised restarts (ok=%v err=%v)", id, ok, err)
		}
	}
	want := replay(t, newStack(t, slots, 2, 3, seed))
	res := brokers[0].Result()
	if msg := sim.DiffResults(res, want); msg != "" {
		t.Fatalf("supervised run diverged from sim.Run: %s\nbroker %+v\nsim    %+v", msg, res, want)
	}
	final := (*stacks)[len(*stacks)-1]
	tw := newStack(t, slots, 2, 3, seed)
	replay(t, tw)
	if !final.sched.SnapshotDuals().Equal(tw.sched.SnapshotDuals()) {
		t.Fatal("supervised run's final duals diverge from sim.Run")
	}
}

// TestSupervisorWedgeDetection: a core goroutine stuck mid-slot (here,
// parked inside a control closure) stops answering the liveness probe;
// the watchdog declares the generation wedged and replaces it.
func TestSupervisorWedgeDetection(t *testing.T) {
	sup, restarted, _ := walSupervisor(t, 8, 5)
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	defer sup.Kill()

	gate := make(chan struct{})
	defer close(gate) // release the wedged goroutine at test end
	b0 := sup.Brokers()[0]
	go b0.do(func() { <-gate })

	awaitRestart(t, restarted)
	if got := sup.Restarts(); got != 1 {
		t.Fatalf("Restarts() = %d, want 1", got)
	}
	if _, err := sup.Slot(); err != nil {
		t.Fatalf("Slot after wedge recovery: %v", err)
	}
}

// TestSupervisorBuildFailureSticky: when a rebuild fails, the supervisor
// stops for good — the sticky error surfaces on every call and Done
// closes — rather than crash-looping against broken on-disk state.
func TestSupervisorBuildFailureSticky(t *testing.T) {
	gen := 0
	errBroken := fmt.Errorf("state needs an operator")
	build := func() (Auctioneer, error) {
		gen++
		if gen > 1 {
			return nil, errBroken
		}
		s := newStack(t, 8, 2, 3, 5)
		b, err := New(s.brokerOptions())
		if err != nil {
			return nil, err
		}
		if err := b.Start(); err != nil {
			return nil, err
		}
		return b, nil
	}
	sup, err := NewSupervisor(SupervisorOptions{Build: build, RestartWait: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	sup.Brokers()[0].Kill()
	select {
	case <-sup.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("supervisor did not stop after the failed rebuild")
	}
	if _, err := sup.Slot(); !errors.Is(err, errBroken) {
		t.Fatalf("Slot after sticky failure = %v, want %v", err, errBroken)
	}
	h := sup.Health()
	if h.Status != "degraded" || h.Reason == "" {
		t.Fatalf("Health after sticky failure = %+v, want degraded with a reason", h)
	}
}
