package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/pdftsp/pdftsp/internal/schedule"
	"github.com/pdftsp/pdftsp/internal/task"
)

// Supervisor runs an Auctioneer — a monolithic broker or a sharded
// fleet, it never branches on the shape — under an in-process watchdog
// and implements the Auctioneer surface itself, so everything above it
// (the HTTP facade, the load generator, the chaos harness) serves
// through restarts without knowing they happened.
//
// Two failure signals trigger a restart: a generation's broker stopping
// without the supervisor asking (any shard's Done closing — the
// in-process analogue of a crash), and a wedge (the liveness probe on
// slot progress not answering within WedgeTimeout — a core goroutine
// stuck in a stalled write). Either way the old generation is put down
// (best effort: a truly wedged goroutine completes its pending Kill
// whenever the stall clears; it is also marked superseded, so once it
// un-wedges it refuses every journal and checkpoint write — and since
// each generation's journal is created on a fresh inode via tmp +
// rename, even an in-flight write from the zombie lands on its own
// orphaned file, never on the successor's), and Build constructs the
// next one — restoring the checkpoint
// manifest and replaying each shard's write-ahead journal, which is
// what turns "restart" into "no acked bid is lost".
//
// API calls that land during the swap wait for the next generation
// (bounded by RestartWait) and retry on ErrClosed, so a submitter
// racing a crash sees latency, not an error. This is in-process
// supervision: it cannot survive the process itself dying — that is
// the checkpoint + journal's job, exercised by `pdftspd -supervise`
// restarting on entry — but it turns every recoverable in-process
// death into a bounded blip.
type SupervisorOptions struct {
	// Build constructs, restores (checkpoint/manifest + per-shard
	// RecoverWAL), and starts a fresh generation. It runs once at Start
	// and once per restart. Required. A Build failure stops the
	// supervisor (its error surfaces on every subsequent call): the
	// state on disk needs an operator, not a retry loop.
	Build func() (Auctioneer, error)
	// ProbeInterval is the liveness-probe cadence (default 250ms; < 0
	// disables wedge detection). WedgeTimeout is how long a probe may go
	// unanswered before the generation is declared wedged (default 2s).
	ProbeInterval time.Duration
	WedgeTimeout  time.Duration
	// MaxRestarts bounds how many times the supervisor will rebuild
	// (0 = unlimited); exceeding it stops the supervisor.
	MaxRestarts int
	// RestartWait bounds how long API calls wait for the next
	// generation mid-swap (default 10s).
	RestartWait time.Duration
	// PreRestore runs after the dead generation is down and before
	// Build — the chaos harness corrupts journals here to exercise
	// replay's degraded paths. OnRestart is notified once the new
	// generation is serving.
	PreRestore func(gen int, reason string)
	OnRestart  func(gen int, reason string)
}

func (o SupervisorOptions) withDefaults() SupervisorOptions {
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.WedgeTimeout <= 0 {
		o.WedgeTimeout = 2 * time.Second
	}
	if o.RestartWait <= 0 {
		o.RestartWait = 10 * time.Second
	}
	return o
}

// Supervisor is the watchdog; see SupervisorOptions.
type Supervisor struct {
	opts SupervisorOptions

	mu       sync.Mutex
	cur      Auctioneer // nil mid-swap and before Start
	gen      int
	restarts int
	stopping bool
	failErr  error         // sticky: Build failure or restart budget exhausted
	swapped  chan struct{} // closed (and replaced) on every generation change

	stopOnce sync.Once
	done     chan struct{}
}

// NewSupervisor builds a supervisor; Start builds and watches the first
// generation.
func NewSupervisor(opts SupervisorOptions) (*Supervisor, error) {
	if opts.Build == nil {
		return nil, fmt.Errorf("service: supervisor needs a Build function")
	}
	return &Supervisor{
		opts:    opts.withDefaults(),
		gen:     -1,
		swapped: make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// Start builds generation 0 and begins watching it.
func (s *Supervisor) Start() error {
	s.mu.Lock()
	if s.gen >= 0 || s.stopping {
		s.mu.Unlock()
		return ErrStarted
	}
	s.mu.Unlock()
	a, err := s.opts.Build()
	if err != nil {
		s.fail(fmt.Errorf("service: supervisor build: %w", err))
		return err
	}
	s.swap(0, a)
	go s.watch(0, a)
	return nil
}

// Done is closed when the supervisor has stopped for good (Drain, Kill,
// a Build failure, or the restart budget running out).
func (s *Supervisor) Done() <-chan struct{} { return s.done }

// Restarts reports how many generations have been rebuilt so far.
func (s *Supervisor) Restarts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// Generation reports the current generation number (0 = the first).
func (s *Supervisor) Generation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// swap installs a new generation and wakes every waiter.
func (s *Supervisor) swap(gen int, a Auctioneer) {
	s.mu.Lock()
	s.gen = gen
	s.cur = a
	close(s.swapped)
	s.swapped = make(chan struct{})
	s.mu.Unlock()
}

// fail stops the supervisor with a sticky error.
func (s *Supervisor) fail(err error) {
	s.mu.Lock()
	s.stopping = true
	if s.failErr == nil {
		s.failErr = err
	}
	close(s.swapped)
	s.swapped = make(chan struct{})
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.done) })
}

// watch is one generation's watchdog: it restarts on an unexpected
// broker stop or a wedged liveness probe, and exits when the
// supervisor stops or the generation is superseded.
func (s *Supervisor) watch(gen int, a Auctioneer) {
	brokers := a.Brokers()
	died := make(chan struct{}, len(brokers))
	for _, br := range brokers {
		go func(br *Broker) {
			select {
			case <-br.Done():
				died <- struct{}{}
			case <-s.done:
			}
		}(br)
	}
	var tick <-chan time.Time
	if s.opts.ProbeInterval > 0 {
		t := time.NewTicker(s.opts.ProbeInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-died:
			s.restart(gen, a, "broker stopped unexpectedly")
			return
		case <-s.done:
			return
		case <-tick:
			if !s.probe(a) {
				s.restart(gen, a, fmt.Sprintf("wedged: liveness probe unanswered for %v", s.opts.WedgeTimeout))
				return
			}
		}
	}
}

// probe asks the generation for slot progress with a deadline; a
// stopped broker answers immediately (its state reads race-free), so
// only a stuck core goroutine fails this.
func (s *Supervisor) probe(a Auctioneer) bool {
	answered := make(chan struct{})
	go func() {
		a.Slot()
		close(answered)
	}()
	select {
	case <-answered:
		return true
	case <-time.After(s.opts.WedgeTimeout):
		return false
	}
}

// restart replaces a dead or wedged generation. Only the current
// generation's watcher gets to restart; stale watchers and
// supervisor-initiated stops bow out.
func (s *Supervisor) restart(gen int, old Auctioneer, reason string) {
	s.mu.Lock()
	if s.stopping || gen != s.gen {
		s.mu.Unlock()
		return
	}
	if s.opts.MaxRestarts > 0 && s.restarts >= s.opts.MaxRestarts {
		s.mu.Unlock()
		s.fail(fmt.Errorf("service: supervisor: restart budget (%d) exhausted; last reason: %s", s.opts.MaxRestarts, reason))
		return
	}
	s.cur = nil // calls now wait for the next generation
	s.mu.Unlock()
	// Put the remains down. A wedged core goroutine cannot be forced;
	// the pending Kill completes whenever its stall clears. Supersede
	// first: from here the old generation refuses every journal and
	// checkpoint write, so even if it un-wedges mid-rebuild it cannot
	// scribble on (or rename over) the files its successor is about to
	// own.
	for _, br := range old.Brokers() {
		br.Supersede()
	}
	killed := make(chan struct{})
	go func() {
		old.Kill()
		close(killed)
	}()
	select {
	case <-killed:
	case <-time.After(s.opts.WedgeTimeout):
	}
	if f := s.opts.PreRestore; f != nil {
		f(gen, reason)
	}
	a, err := s.opts.Build()
	if err != nil {
		s.fail(fmt.Errorf("service: supervisor rebuild after %q: %w", reason, err))
		return
	}
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		a.Kill()
		return
	}
	s.restarts++
	s.mu.Unlock()
	s.swap(gen+1, a)
	if f := s.opts.OnRestart; f != nil {
		f(gen+1, reason)
	}
	go s.watch(gen+1, a)
}

// acquire returns the serving generation, waiting out a swap in
// progress (bounded by RestartWait).
func (s *Supervisor) acquire() (Auctioneer, int, error) {
	deadline := time.NewTimer(s.opts.RestartWait)
	defer deadline.Stop()
	s.mu.Lock()
	for {
		if s.stopping {
			err := s.failErr
			s.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return nil, 0, err
		}
		if s.cur != nil {
			a, gen := s.cur, s.gen
			s.mu.Unlock()
			return a, gen, nil
		}
		ch := s.swapped
		s.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return nil, 0, fmt.Errorf("%w: supervisor restart did not complete in %v", ErrClosed, s.opts.RestartWait)
		}
		s.mu.Lock()
	}
}

// awaitSwap blocks until generation gen is superseded (or the
// supervisor stops / RestartWait elapses).
func (s *Supervisor) awaitSwap(gen int) {
	deadline := time.NewTimer(s.opts.RestartWait)
	defer deadline.Stop()
	for {
		s.mu.Lock()
		if s.stopping || s.gen != gen {
			s.mu.Unlock()
			return
		}
		ch := s.swapped
		s.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return
		}
	}
}

// supervisorRetries bounds how many generation swaps one API call will
// chase before giving up.
const supervisorRetries = 3

// withGen runs f against the serving generation, retrying across a
// restart when the generation died under the call.
func (s *Supervisor) withGen(f func(a Auctioneer) error) error {
	for tries := 0; ; tries++ {
		a, gen, err := s.acquire()
		if err != nil {
			return err
		}
		err = f(a)
		retryable := errors.Is(err, ErrClosed) || errors.Is(err, ErrDraining)
		if err == nil || !retryable || tries >= supervisorRetries {
			return err
		}
		s.awaitSwap(gen)
	}
}

// Submit serves one bid through the current generation, retrying across
// a restart; the journal makes the retry idempotent on the broker side.
// A retry refused with ErrDuplicateID for a bid the new generation
// replayed from the journal (re-held, or already decided before the
// crash) is not a conflict — the original submission succeeded — so it
// maps to the bid's real outcome instead of surfacing a 409.
func (s *Supervisor) Submit(ctx context.Context, t task.Task) (schedule.Decision, error) {
	var d schedule.Decision
	attempts := 0
	err := s.withGen(func(a Auctioneer) error {
		attempts++
		var err error
		d, err = a.Submit(ctx, t)
		return err
	})
	if attempts > 1 && errors.Is(err, ErrDuplicateID) && t.ID >= 0 {
		if dd, ok, derr := s.DecisionFor(t.ID); derr == nil && ok {
			return dd, nil
		}
		if pending, perr := s.PendingFor(t.ID); perr == nil && pending {
			return s.awaitDecision(ctx, t.ID)
		}
	}
	return d, err
}

// SubmitBatch mirrors Broker.SubmitBatch across restarts. Per-bid
// duplicate-ID refusals on a retried batch are resolved against the
// replayed state like Submit's.
func (s *Supervisor) SubmitBatch(ctx context.Context, tasks []task.Task) ([]Outcome, error) {
	var outs []Outcome
	attempts := 0
	err := s.withGen(func(a Auctioneer) error {
		attempts++
		var err error
		outs, err = a.SubmitBatch(ctx, tasks)
		return err
	})
	if err == nil && attempts > 1 {
		for i := range outs {
			if outs[i].Err == nil || !errors.Is(outs[i].Err, ErrDuplicateID) || tasks[i].ID < 0 {
				continue
			}
			outs[i] = s.resolveReplayed(ctx, tasks[i].ID, outs[i])
		}
	}
	return outs, err
}

// SubmitBatchAck mirrors Broker.SubmitBatchAck across restarts. On a
// retried batch, a duplicate-ID verdict for a bid the journal replayed
// flips to accepted — the bid is safe (held or decided), exactly what
// the ack promises.
func (s *Supervisor) SubmitBatchAck(ctx context.Context, tasks []task.Task, verdicts []error) (int, error) {
	var held int
	attempts := 0
	err := s.withGen(func(a Auctioneer) error {
		attempts++
		var err error
		held, err = a.SubmitBatchAck(ctx, tasks, verdicts)
		return err
	})
	if err == nil && attempts > 1 {
		for i, v := range verdicts {
			if v == nil || !errors.Is(v, ErrDuplicateID) || tasks[i].ID < 0 {
				continue
			}
			id := tasks[i].ID
			if _, ok, derr := s.DecisionFor(id); derr == nil && ok {
				verdicts[i] = nil
				held++
				continue
			}
			if pending, perr := s.PendingFor(id); perr == nil && pending {
				verdicts[i] = nil
				held++
			}
		}
	}
	return held, err
}

// resolveReplayed maps one retried bid's duplicate-ID refusal onto its
// real outcome when the journal replayed it (decided, or held awaiting
// its round); a genuine duplicate keeps the original conflict.
func (s *Supervisor) resolveReplayed(ctx context.Context, id int, orig Outcome) Outcome {
	if d, ok, err := s.DecisionFor(id); err == nil && ok {
		return Outcome{Decision: d}
	}
	if pending, err := s.PendingFor(id); err == nil && pending {
		d, derr := s.awaitDecision(ctx, id)
		return Outcome{Decision: d, Err: derr}
	}
	return orig
}

// awaitDecision blocks until a replayed bid's decision lands (its slot
// closing in whichever generation is serving by then), honoring ctx.
// Queries go through the supervisor, so further restarts mid-wait are
// chased transparently.
func (s *Supervisor) awaitDecision(ctx context.Context, id int) (schedule.Decision, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		d, ok, err := s.DecisionFor(id)
		if err != nil || ok {
			return d, err
		}
		if pending, err := s.PendingFor(id); err != nil {
			return schedule.Decision{}, err
		} else if !pending {
			// Decided between the two queries, or genuinely gone (a journal
			// loss the chaos harness would flag); one more look decides which.
			if d, ok, err := s.DecisionFor(id); err != nil || ok {
				return d, err
			}
			return schedule.Decision{}, fmt.Errorf("%w: bid %d neither held nor decided after replay", ErrClosed, id)
		}
		select {
		case <-ctx.Done():
			return schedule.Decision{}, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Step closes n slots on the current generation.
func (s *Supervisor) Step(n int) (int, error) {
	var slot int
	err := s.withGen(func(a Auctioneer) error {
		var err error
		slot, err = a.Step(n)
		return err
	})
	return slot, err
}

// Slot reports the current (bid-accepting) slot.
func (s *Supervisor) Slot() (int, error) {
	var slot int
	err := s.withGen(func(a Auctioneer) error {
		var err error
		slot, err = a.Slot()
		return err
	})
	return slot, err
}

// DecisionFor finds a decided bid in the current generation (restored
// decisions included — the checkpoint chain carries them across
// restarts).
func (s *Supervisor) DecisionFor(id int) (schedule.Decision, bool, error) {
	var (
		d  schedule.Decision
		ok bool
	)
	err := s.withGen(func(a Auctioneer) error {
		var err error
		d, ok, err = a.DecisionFor(id)
		return err
	})
	return d, ok, err
}

// PendingFor reports a bid held in the current generation.
func (s *Supervisor) PendingFor(id int) (bool, error) {
	var ok bool
	err := s.withGen(func(a Auctioneer) error {
		var err error
		ok, err = a.PendingFor(id)
		return err
	})
	return ok, err
}

// Status reports the current generation's status.
func (s *Supervisor) Status() (Status, error) {
	var st Status
	err := s.withGen(func(a Auctioneer) error {
		var err error
		st, err = a.Status()
		return err
	})
	return st, err
}

// Health reports the current generation's health; a supervisor that has
// given up (Build failure, restart budget) reports degraded with the
// sticky reason, and a swap in progress reports degraded-but-restarting.
func (s *Supervisor) Health() Health {
	s.mu.Lock()
	stopping, failErr, cur := s.stopping, s.failErr, s.cur
	s.mu.Unlock()
	if stopping && failErr != nil {
		return Health{Status: "degraded", Reason: failErr.Error()}
	}
	if cur == nil && !stopping {
		return Health{Status: "degraded", Reason: "supervisor restarting"}
	}
	if cur == nil {
		return Health{Status: "degraded", Reason: ErrClosed.Error()}
	}
	return cur.Health()
}

// Brokers exposes the current generation's fleet members (the chaos
// harness kills these to exercise the watchdog).
func (s *Supervisor) Brokers() []*Broker {
	a, _, err := s.acquire()
	if err != nil {
		return nil
	}
	return a.Brokers()
}

// Handler serves the /v1 HTTP API through the supervisor, so requests
// in flight during a restart retry against the next generation.
func (s *Supervisor) Handler() http.Handler { return apiHandler(s) }

// Drain stops the supervisor and drains the serving generation (final
// checkpoint, journal rotation, RunEnd).
func (s *Supervisor) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return nil
	}
	s.stopping = true
	a := s.cur
	close(s.swapped)
	s.swapped = make(chan struct{})
	s.mu.Unlock()
	var err error
	if a != nil {
		err = a.Drain(ctx)
	}
	s.stopOnce.Do(func() { close(s.done) })
	return err
}

// Kill crash-stops the supervisor and the serving generation.
func (s *Supervisor) Kill() {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.stopping = true
	a := s.cur
	close(s.swapped)
	s.swapped = make(chan struct{})
	s.mu.Unlock()
	if a != nil {
		a.Kill()
	}
	s.stopOnce.Do(func() { close(s.done) })
}

// retryAfter delegates to the serving generation (all generations share
// a clock mode).
func (s *Supervisor) retryAfter() string {
	a, _, err := s.acquire()
	if err != nil {
		return "1"
	}
	return a.retryAfter()
}

// statusPayload serves the generation's own payload (a fleet's
// ShardsStatus, a broker's Status) on /v1/status.
func (s *Supervisor) statusPayload() (any, error) {
	var payload any
	err := s.withGen(func(a Auctioneer) error {
		var err error
		payload, err = a.statusPayload()
		return err
	})
	return payload, err
}
