package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/pdftsp/pdftsp/internal/sim"
	"github.com/pdftsp/pdftsp/internal/task"
)

// walOptions wires a journaled, checkpointed broker for these tests.
func walOptions(t *testing.T, s *testStack) Options {
	t.Helper()
	opts := s.brokerOptions()
	opts.CheckpointPath = filepath.Join(t.TempDir(), "wal-test.ckpt")
	opts.CheckpointEvery = 1
	opts.WALPath = WALPath(opts.CheckpointPath)
	opts.RunLabel = "wal-test" // New defaults it; pin so ReadWAL's label matches
	return opts
}

// ackBatch fire-and-forget submits the batch and fails the test on any
// refused verdict.
func ackBatch(t *testing.T, b *Broker, batch []task.Task) {
	t.Helper()
	verdicts := make([]error, len(batch))
	if _, err := b.SubmitBatchAck(context.Background(), batch, verdicts); err != nil {
		t.Fatalf("SubmitBatchAck: %v", err)
	}
	for i, v := range verdicts {
		if v != nil {
			t.Fatalf("task %d refused: %v", batch[i].ID, v)
		}
	}
}

// TestWALJournalsAckedBids: every acked, undecided bid is on disk before
// its ack releases, and a crash (Kill) leaves the journal readable.
func TestWALJournalsAckedBids(t *testing.T) {
	s := newStack(t, 8, 2, 3, 5)
	opts := walOptions(t, s)
	b := startBroker(t, opts)
	ackBatch(t, b, s.tasks)
	b.Kill()

	got := ReadWAL(opts.WALPath, opts.RunLabel)
	if len(got) != len(s.tasks) {
		t.Fatalf("journal holds %d bids, want %d", len(got), len(s.tasks))
	}
	for i, tk := range s.tasks {
		if got[i] != tk {
			t.Fatalf("journal record %d = %+v, want %+v", i, got[i], tk)
		}
	}
}

// TestWALValidPrefixProperty is the satellite property test: however the
// journal is truncated (at every byte boundary) or corrupted (every byte
// flipped, one at a time), replay yields a valid prefix of the original
// records and never panics or errors.
func TestWALValidPrefixProperty(t *testing.T) {
	s := newStack(t, 8, 2, 3, 5)
	opts := walOptions(t, s)
	b := startBroker(t, opts)
	ackBatch(t, b, s.tasks)
	b.Kill()

	data, err := os.ReadFile(opts.WALPath)
	if err != nil {
		t.Fatal(err)
	}
	want := ReadWAL(opts.WALPath, opts.RunLabel)
	if len(want) != len(s.tasks) {
		t.Fatalf("intact journal holds %d bids, want %d", len(want), len(s.tasks))
	}
	isPrefix := func(got []task.Task) bool {
		if len(got) > len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	mut := filepath.Join(t.TempDir(), "mutated.wal")
	check := func(kind string, i int, data []byte) {
		t.Helper()
		if err := os.WriteFile(mut, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got := ReadWAL(mut, opts.RunLabel)
		if !isPrefix(got) {
			t.Fatalf("%s at byte %d: replay returned %d records that are not a prefix of the %d originals",
				kind, i, len(got), len(want))
		}
	}
	for i := 0; i <= len(data); i++ {
		check("truncation", i, data[:i])
	}
	for i := 0; i < len(data); i++ {
		flipped := append([]byte(nil), data...)
		flipped[i] ^= 0xFF
		check("corruption", i, flipped)
	}
}

// TestWALReplayIdempotent: replay skips bids the restored decision map
// already decided, duplicated journal records, and never double-offers —
// and the recovered run finishes bit-identical to a sequential sim.Run.
func TestWALReplayIdempotent(t *testing.T) {
	const slots, killAt = 8, 3
	s := newStack(t, slots, 2, 3, 9)
	opts := walOptions(t, s)
	b := startBroker(t, opts)

	perSlot := make([][]task.Task, slots)
	for _, tk := range s.tasks {
		perSlot[tk.Arrival] = append(perSlot[tk.Arrival], tk)
	}
	for slot := 0; slot < killAt; slot++ {
		ackBatch(t, b, perSlot[slot])
		if _, err := b.Step(1); err != nil {
			t.Fatalf("step %d: %v", slot, err)
		}
	}
	// The ack boundary: the killAt batch is acked, journaled, undecided.
	ackBatch(t, b, perSlot[killAt])
	b.Kill()

	// Sabotage the journal with duplicates: append a copy of every
	// record region after the header, plus a hand-framed record for a
	// bid the checkpoint already decided.
	data, err := os.ReadFile(opts.WALPath)
	if err != nil {
		t.Fatal(err)
	}
	// The last rotation re-headed the journal at the kill slot.
	hdr := len(walHeader(opts.RunLabel, killAt))
	if hdr >= len(data) {
		t.Fatalf("journal shorter (%d) than its header (%d)", len(data), hdr)
	}
	var decided task.Task
	found := false
	for slot := 0; slot < killAt && !found; slot++ {
		if len(perSlot[slot]) > 0 {
			decided, found = perSlot[slot][0], true
		}
	}
	if !found {
		t.Fatalf("no decided bids before slot %d for this seed", killAt)
	}
	payload := appendWALTask(nil, &decided)
	frame := appendU64(nil, uint64(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	data = append(data, data[hdr:]...) // every live record twice
	data = append(data, frame...)      // plus an already-decided bid
	if err := os.WriteFile(opts.WALPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A twin stack restores the checkpoint and replays the journal.
	s2 := newStack(t, slots, 2, 3, 9)
	opts2 := walOptions(t, s2)
	opts2.CheckpointPath = opts.CheckpointPath
	opts2.WALPath = opts.WALPath
	ck, err := LoadCheckpoint(opts.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Slot != killAt {
		t.Fatalf("checkpoint at slot %d, want %d", ck.Slot, killAt)
	}
	b2, err := New(opts2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Restore(ck); err != nil {
		t.Fatal(err)
	}
	replayed, err := b2.RecoverWAL()
	if err != nil {
		t.Fatalf("RecoverWAL: %v", err)
	}
	if replayed != len(perSlot[killAt]) {
		t.Fatalf("replayed %d bids, want %d (the acked, undecided batch)", replayed, len(perSlot[killAt]))
	}
	// Duplicates dedup by held ID; the hand-framed already-decided bid
	// has an arrival behind the restored clock, so the stale guard (which
	// runs first) drops it — either way it is never re-offered.
	if b2.walDeduped != len(perSlot[killAt]) {
		t.Fatalf("deduped %d records, want %d", b2.walDeduped, len(perSlot[killAt]))
	}
	if b2.walStale != 1 {
		t.Fatalf("dropped %d stale records, want 1 (the already-decided bid)", b2.walStale)
	}
	if err := b2.Start(); err != nil {
		t.Fatal(err)
	}
	for slot := killAt; slot < slots; slot++ {
		if slot > killAt {
			ackBatch(t, b2, perSlot[slot])
		}
		if _, err := b2.Step(1); err != nil {
			t.Fatalf("step %d after recovery: %v", slot, err)
		}
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b2.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}

	want := replay(t, newStack(t, slots, 2, 3, 9))
	res := b2.Result()
	if msg := sim.DiffResults(res, want); msg != "" {
		t.Fatalf("recovered run diverged from sim.Run: %s\nbroker %+v\nsim    %+v", msg, res, want)
	}
	tw := newStack(t, slots, 2, 3, 9)
	replay(t, tw)
	if !s2.sched.SnapshotDuals().Equal(tw.sched.SnapshotDuals()) {
		t.Fatal("recovered run's final duals diverge from sim.Run")
	}
}

// TestWALAppendFailureRefusesUnjournaled: when the journal cannot record
// a batch, every bid in it is un-held and refused with ErrWAL (never
// acked undurably), the broker degrades (WAL failure counters), and the
// next successful rotation heals it.
func TestWALAppendFailureRefusesUnjournaled(t *testing.T) {
	s := newStack(t, 8, 2, 3, 5)
	opts := walOptions(t, s)
	b := startBroker(t, opts)

	perSlot := make([][]task.Task, 8)
	for _, tk := range s.tasks {
		perSlot[tk.Arrival] = append(perSlot[tk.Arrival], tk)
	}
	ackBatch(t, b, perSlot[0])
	heldBefore := len(perSlot[0])

	// Yank the journal's file descriptor out from under the broker: the
	// next append fails, and so does the truncate-rollback (broken).
	if err := b.do(func() { b.wal.f.Close() }); err != nil {
		t.Fatal(err)
	}
	batch := append([]task.Task(nil), perSlot[1]...)
	for i := range batch {
		batch[i].Arrival = 0 // arrive now, on the wedged journal
	}
	verdicts := make([]error, len(batch))
	if _, err := b.SubmitBatchAck(context.Background(), batch, verdicts); err != nil {
		t.Fatalf("SubmitBatchAck: %v", err)
	}
	for i, v := range verdicts {
		if !errors.Is(v, ErrWAL) {
			t.Fatalf("verdict %d = %v, want ErrWAL", i, v)
		}
	}
	st, err := b.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Held != heldBefore {
		t.Fatalf("held %d bids after the failed append, want %d (refused bids must be un-held)", st.Held, heldBefore)
	}
	if st.WALFailures == 0 || st.WALError == "" {
		t.Fatalf("WAL failure not surfaced: %+v", st)
	}
	// Broken journal: intake refuses outright until rotation.
	one := perSlot[1][0]
	one.Arrival = 0
	one.ID = 90001
	if _, err := b.Submit(contextWithTimeout(t), one); !errors.Is(err, ErrWAL) {
		t.Fatalf("Submit on a broken journal = %v, want ErrWAL", err)
	}
	// Closing the slot persists a checkpoint; its rotation rewrites the
	// journal onto a fresh descriptor and clears the broken state.
	if _, err := b.Step(1); err != nil {
		t.Fatal(err)
	}
	healed := append([]task.Task(nil), perSlot[1]...)
	for i := range healed {
		healed[i].Arrival = 1
		healed[i].ID = 91000 + i
	}
	ackBatch(t, b, healed)
	st, err = b.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Held != len(healed) {
		t.Fatalf("held %d bids after rotation healed the journal, want %d", st.Held, len(healed))
	}
	b.Kill()
}

// TestWALRecoverReseedFailureKeepsJournal: recovery stages its reseeded
// journal as a temp file and renames it into place only once the
// survivors are durable — so a recovery attempt whose reseed fails
// (here: the broker superseded at the reseed's commit gate) leaves the
// old journal byte-identical on disk, and the next attempt still
// replays every acked bid. A truncate-in-place reseed would destroy
// them all at the first failed attempt.
func TestWALRecoverReseedFailureKeepsJournal(t *testing.T) {
	s := newStack(t, 8, 2, 3, 5)
	opts := walOptions(t, s)
	b := startBroker(t, opts)
	ackBatch(t, b, s.tasks)
	b.Kill()
	before, err := os.ReadFile(opts.WALPath)
	if err != nil {
		t.Fatal(err)
	}

	s2 := newStack(t, 8, 2, 3, 5)
	opts2 := walOptions(t, s2)
	opts2.CheckpointPath = opts.CheckpointPath
	opts2.WALPath = opts.WALPath
	b2, err := New(opts2)
	if err != nil {
		t.Fatal(err)
	}
	b2.Supersede() // the reseed's commit refuses, as if recovery died mid-way
	if _, err := b2.RecoverWAL(); err == nil {
		t.Fatal("RecoverWAL with a refused reseed returned nil error")
	}
	after, err := os.ReadFile(opts.WALPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("a failed recovery attempt mutated the on-disk journal")
	}

	s3 := newStack(t, 8, 2, 3, 5)
	opts3 := walOptions(t, s3)
	opts3.CheckpointPath = opts.CheckpointPath
	opts3.WALPath = opts.WALPath
	b3, err := New(opts3)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := b3.RecoverWAL()
	if err != nil {
		t.Fatalf("RecoverWAL after a failed attempt: %v", err)
	}
	if replayed != len(s.tasks) {
		t.Fatalf("replayed %d bids after a failed recovery attempt, want all %d", replayed, len(s.tasks))
	}
}

// TestWALRecoverWithoutCheckpoint: a crash before the first checkpoint
// persist leaves only the journal on disk; recovery onto a fresh broker
// (slot 0, empty decision map) replays every acked bid and the resumed
// run decides them all, bit-identical to a sequential sim.Run — the
// contract buildSupervised's journal-only restore path relies on.
func TestWALRecoverWithoutCheckpoint(t *testing.T) {
	const slots = 8
	s := newStack(t, slots, 2, 3, 5)
	opts := walOptions(t, s)
	b := startBroker(t, opts)
	ackBatch(t, b, s.tasks)
	b.Kill() // no slot ever closed: journal on disk, checkpoint never written
	if _, err := os.Stat(opts.CheckpointPath); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("checkpoint unexpectedly on disk before the first persist: %v", err)
	}

	s2 := newStack(t, slots, 2, 3, 5)
	opts2 := walOptions(t, s2)
	opts2.CheckpointPath = opts.CheckpointPath
	opts2.WALPath = opts.WALPath
	b2, err := New(opts2)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := b2.RecoverWAL()
	if err != nil {
		t.Fatalf("RecoverWAL without a checkpoint: %v", err)
	}
	if replayed != len(s.tasks) {
		t.Fatalf("replayed %d bids from the journal alone, want all %d", replayed, len(s.tasks))
	}
	if err := b2.Start(); err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < slots; slot++ {
		if _, err := b2.Step(1); err != nil {
			t.Fatalf("step %d after journal-only recovery: %v", slot, err)
		}
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b2.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	for _, tk := range s.tasks {
		if _, ok, err := b2.DecisionFor(tk.ID); err != nil || !ok {
			t.Fatalf("acked bid %d lost across the journal-only recovery (ok=%v err=%v)", tk.ID, ok, err)
		}
	}
	want := replay(t, newStack(t, slots, 2, 3, 5))
	res := b2.Result()
	if msg := sim.DiffResults(res, want); msg != "" {
		t.Fatalf("journal-only recovery diverged from sim.Run: %s\nbroker %+v\nsim    %+v", msg, res, want)
	}
}

// httpGetCode GETs the URL and returns just the status code.
func httpGetCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// contextWithTimeout is a test-scoped context that cleans itself up.
func contextWithTimeout(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestWALDrainRetainsHeld: drain refuses held bids, but their journal
// records survive the final rotation — a restore re-offers them instead
// of losing fire-and-forget submitters' acks.
func TestWALDrainRetainsHeld(t *testing.T) {
	s := newStack(t, 8, 2, 3, 5)
	opts := walOptions(t, s)
	b := startBroker(t, opts)
	ackBatch(t, b, s.tasks)
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	left := ReadWAL(opts.WALPath, opts.RunLabel)
	if len(left) != len(s.tasks) {
		t.Fatalf("journal holds %d bids after drain, want all %d refused-held bids", len(left), len(s.tasks))
	}
}

// TestPendingFor: an acked, undecided bid answers pending (202 over
// HTTP), flips to decided once its slot closes, and an unknown ID stays
// a plain 404.
func TestPendingFor(t *testing.T) {
	s := newStack(t, 8, 2, 3, 5)
	b := startBroker(t, s.brokerOptions())
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()

	batch := s.tasks[:4]
	ackBatch(t, b, batch)
	id := batch[0].ID
	if ok, err := b.PendingFor(id); err != nil || !ok {
		t.Fatalf("PendingFor(%d) = %v, %v; want true", id, ok, err)
	}
	if ok, err := b.PendingFor(999999); err != nil || ok {
		t.Fatalf("PendingFor(unknown) = %v, %v; want false", ok, err)
	}
	if code := httpGetCode(t, fmt.Sprintf("%s/v1/decisions/%d", srv.URL, id)); code != 202 {
		t.Fatalf("GET held decision = %d, want 202", code)
	}
	if code := httpGetCode(t, srv.URL+"/v1/decisions/999999"); code != 404 {
		t.Fatalf("GET unknown decision = %d, want 404", code)
	}
	if _, err := b.Step(1); err != nil {
		t.Fatal(err)
	}
	if ok, err := b.PendingFor(id); err != nil || ok {
		t.Fatalf("PendingFor(%d) after its slot closed = %v, %v; want false", id, ok, err)
	}
	if _, ok, err := b.DecisionFor(id); err != nil || !ok {
		t.Fatalf("DecisionFor(%d) = %v, %v; want decided", id, ok, err)
	}
	if code := httpGetCode(t, fmt.Sprintf("%s/v1/decisions/%d", srv.URL, id)); code != 200 {
		t.Fatalf("GET decided bid = %d, want 200", code)
	}
	b.Kill()
}
