// Package service turns the batch pdFTSP core into a long-lived auction
// broker: bids arrive concurrently (in-process Submit or the HTTP facade
// in http.go), are serialized through a single core goroutine — the
// paper's dual updates are inherently sequential (Lemma 1), so one
// goroutine owning λ/φ and the ledger is the correctness boundary, not a
// bottleneck worked around with locks — and each caller receives the
// irrevocable Decision (admit/reject, plan, vendor, payment).
//
// Time is slotted exactly as in the paper. The broker holds each bid
// until its arrival slot closes, then runs the slot's auction round in
// (arrival, ID) order; a real-clock broker closes a slot every
// Options.SlotDuration, a virtual-clock broker whenever Step is called
// (tests and the smoke harness drive it deterministically). Because the
// round order is deterministic, N clients submitting concurrently reach
// exactly the same admissions, payments, and final duals as the same
// bids replayed sequentially through sim.Run — the service-level
// equivalence the tests pin down.
//
// The broker is operable: the intake queue is bounded (ErrQueueFull maps
// to HTTP 429), every bid honors its caller's context, SIGTERM drains
// gracefully (cmd/pdftspd), and the full auction state — dual prices,
// cluster ledger, accounting, decided bids — checkpoints to JSON and
// restores bit-exactly, so a crashed broker resumes mid-horizon.
package service

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pdftsp/pdftsp/internal/cluster"
	"github.com/pdftsp/pdftsp/internal/core"
	"github.com/pdftsp/pdftsp/internal/lora"
	"github.com/pdftsp/pdftsp/internal/obs"
	"github.com/pdftsp/pdftsp/internal/schedule"
	"github.com/pdftsp/pdftsp/internal/sim"
	"github.com/pdftsp/pdftsp/internal/task"
	"github.com/pdftsp/pdftsp/internal/timeslot"
	"github.com/pdftsp/pdftsp/internal/vendor"
)

// Service errors, each mapped to an HTTP status by the facade.
var (
	// ErrQueueFull: the bounded intake queue is full (HTTP 429).
	ErrQueueFull = errors.New("service: intake queue full")
	// ErrChannelFull: the intake channel itself rejected the send — the
	// core goroutine is behind on draining submissions. Wraps
	// ErrQueueFull, so existing errors.Is checks keep matching.
	ErrChannelFull = fmt.Errorf("%w (intake channel)", ErrQueueFull)
	// ErrHeldFull: the per-horizon held-bid budget (Options.QueueSize) is
	// exhausted — bids are arriving faster than slots close. Wraps
	// ErrQueueFull.
	ErrHeldFull = fmt.Errorf("%w (held bids at capacity)", ErrQueueFull)
	// ErrPastSlot: the bid's arrival slot has already closed (HTTP 409).
	ErrPastSlot = errors.New("service: arrival slot already closed")
	// ErrHorizonOver: the broker's horizon is exhausted (HTTP 410).
	ErrHorizonOver = errors.New("service: horizon over")
	// ErrDuplicateID: a decided or held bid already carries this ID (HTTP 409).
	ErrDuplicateID = errors.New("service: duplicate task ID")
	// ErrDraining: the broker is shutting down gracefully (HTTP 503).
	ErrDraining = errors.New("service: broker draining")
	// ErrClosed: the broker has stopped (HTTP 503).
	ErrClosed = errors.New("service: broker closed")
	// ErrRealClock: Step called on a real-clock broker (HTTP 409).
	ErrRealClock = errors.New("service: broker runs on the real clock")
	// ErrStarted: a lifecycle call that requires a stopped broker.
	ErrStarted = errors.New("service: broker already started")
)

// DualCheckpointer is implemented by schedulers whose dual state must
// survive restarts; core.Scheduler is the canonical implementation.
// Schedulers without dual state (the greedy baselines) checkpoint the
// ledger and accounting only.
type DualCheckpointer interface {
	SnapshotDuals() core.DualState
	RestoreDuals(core.DualState) error
}

// Options configures a broker.
type Options struct {
	// Cluster is the provider's data center; the broker owns its ledger
	// for the lifetime of the run. Required.
	Cluster *cluster.Cluster
	// Scheduler answers each bid; *core.Scheduler for the paper's
	// auction. It must be bound to Cluster. Required.
	Scheduler sim.Scheduler
	// Model is the shared pre-trained model (drives s_ik and r_b).
	Model lora.ModelConfig
	// Market is the labor-vendor marketplace; nil only if no bid will
	// request pre-processing.
	Market *vendor.Marketplace
	// QueueSize bounds the bids the broker will hold awaiting their
	// slot's auction round; excess submissions fail fast with
	// ErrQueueFull. Default 1024.
	QueueSize int
	// VirtualClock, when set, advances the slot clock only through Step
	// — deterministic replay for tests and the smoke harness. Otherwise
	// a real ticker closes a slot every SlotDuration.
	VirtualClock bool
	// SlotDuration is the real-clock slot length; default 10s. (The
	// paper's slots are 10 minutes; a serving deployment picks its own
	// granularity.)
	SlotDuration time.Duration
	// CheckpointPath, when non-empty, persists the auction state to this
	// file (atomically, via rename) as slots close; Restore resumes from
	// it after a crash.
	CheckpointPath string
	// CheckpointEvery writes the checkpoint every n closed slots;
	// default 1 (every slot).
	CheckpointEvery int
	// CheckpointFullEvery controls the full-snapshot cadence: every n-th
	// checkpoint write is the full JSON snapshot, the writes in between
	// append binary per-slot deltas to a ".delta" sidecar (see delta.go).
	// Default 1 — every write is a full snapshot, the pre-PR6 behavior —
	// so ReadCheckpoint alone keeps seeing the latest state unless a
	// deployment opts into deltas (then LoadCheckpoint replays them).
	// Drain and horizon end always force a full snapshot.
	CheckpointFullEvery int
	// DropLosingPlans, when set, discards the (never again consulted)
	// candidate Schedule attached to rejected decisions instead of
	// retaining it in the decisions map — a large memory saving on
	// million-bid horizons. Admitted plans are always retained (failure
	// recovery re-plans from them). Checkpoints written with this set
	// restore with the same accounting, duals, and ledger; only the
	// rejected bids' hypothetical plans are absent.
	DropLosingPlans bool
	// Observer receives the broker's decision-path event stream
	// (RunStart/Bid/Outcome/RunEnd plus the scheduler's Vendor/Dual/
	// Payment events). The broker emits from its single core goroutine,
	// so the observer needs no internal locking on its account.
	Observer obs.Observer
	// RunLabel names this broker's run in emitted events and in the
	// checkpoint; default "pdftspd".
	RunLabel string
	// Failures injects node outages with the simulator's semantics: each
	// surfaces at the close of a bid-bearing slot at or after its From,
	// masks the node's remaining cells in the ledger, re-plans broken
	// commitments through the scheduler, and refunds tasks that cannot
	// recover (their decided outcome flips to ReasonFailedNode). Given
	// the same bids and failures, the broker's accounting stays
	// bit-identical to sim.Run with Config.Failures.
	Failures []sim.Failure
	// Quotes, when non-nil, replaces direct Market lookups for
	// pre-processing bids with a fallible vendor client (vendor.Retrier
	// over vendor.Flaky); a purchase that stays down past the retry
	// deadline rejects the bid with schedule.ReasonVendorDown. Nil keeps
	// the infallible Market path.
	Quotes vendor.Caller
	// CheckpointFault, when set, is consulted before each checkpoint
	// write with the slot being persisted; a non-nil return fails the
	// write (fault injection for the degraded-mode path).
	CheckpointFault func(slot int) error
	// DegradeAfter is the number of consecutive checkpoint-write failures
	// after which /healthz reports degraded (bids keep flowing either
	// way). Default 3.
	DegradeAfter int
	// SpecWorkers > 1 closes each slot through the speculative parallel
	// round (core.Speculator): the held batch fans across that many
	// workers, each computing a tentative decision against the frozen
	// duals/ledger, and a sequential validation pass commits tentative
	// decisions whose read footprint no earlier bid wrote, re-running the
	// rest through the normal Offer path. The decisions, duals, ledger,
	// and event stream are bit-identical to the sequential round by
	// construction. Requires Scheduler to be *core.Scheduler; 0 or 1
	// keeps the plain sequential round (the default).
	SpecWorkers int
	// AsyncCheckpoint moves checkpoint file I/O (full JSON snapshots and
	// binary delta appends) off the core goroutine onto a dedicated
	// writer: the bytes are still serialized synchronously at slot close
	// (so they capture exactly that slot's state), but the disk write
	// overlaps the next round. Backpressure bounds the pipeline at two
	// in-flight writes — a slot cannot close until the write staged two
	// checkpoints ago has landed. Write failures surface through the same
	// Status/ckpt-failure counters and degraded-mode rules as the
	// synchronous path, one harvest later; any failure forces the next
	// checkpoint to be a full snapshot so the on-disk chain restates
	// everything a lost delta carried.
	AsyncCheckpoint bool
	// WALPath, when non-empty, journals every held bid to a CRC-framed
	// write-ahead log before its intake ack releases, closing the
	// ack-to-slot-close durability gap: an acked bid survives a crash and
	// replays idempotently through RecoverWAL (wal.go). The journal
	// rotates on every successful checkpoint persist, so it stays one
	// checkpoint interval deep; without a checkpoint path it only appends
	// and the full acked history replays on restore.
	WALPath string
	// WALSyncEvery batches journal fsyncs: the default 1 fsyncs before
	// every ack (an acked bid survives machine power loss); n > 1 fsyncs
	// every n-th intake message, accepting an OS-buffer-deep loss window
	// in exchange for amortizing the sync.
	WALSyncEvery int
	// Spot, when non-nil, attaches an elastic spot-capacity tier
	// (internal/spot.Provider): the provider's nodes become unavailable
	// until leased, leases are rented and released against the published
	// duals, and market reclaims revoke capacity with the failure
	// tracker's re-plan/refund semantics. The broker drives the provider
	// at exactly the simulator's trigger points, so a spot-enabled broker
	// stays bit-identical to sim.Run with Config.Spot. The provider must
	// be dedicated to this broker (its state binds to the cluster).
	Spot sim.SpotProvider
}

// withDefaults fills unset knobs.
func (o Options) withDefaults() Options {
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if o.SlotDuration <= 0 {
		o.SlotDuration = 10 * time.Second
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	if o.CheckpointFullEvery <= 0 {
		o.CheckpointFullEvery = 1
	}
	if o.RunLabel == "" {
		o.RunLabel = "pdftspd"
	}
	if o.DegradeAfter <= 0 {
		o.DegradeAfter = 3
	}
	return o
}

// Outcome is the terminal answer for one submitted bid: the decision, or
// the error that prevented one (cancellation, drain).
type Outcome struct {
	Decision schedule.Decision
	Err      error
}

// pending is one accepted bid awaiting its slot's auction round.
type pending struct {
	task task.Task
	ctx  context.Context
	// ack reports the intake verdict (held, or why not); buffered so the
	// core loop never blocks on a departed submitter.
	ack chan error
	// resp delivers the outcome; buffered for the same reason.
	resp chan Outcome
}

// pendingPool recycles Submit's pending objects (channels included):
// the synchronous path fully consumes both channels before returning,
// so a recycled pending is always empty. SubmitAsync hands resp to the
// caller and therefore always allocates fresh.
var pendingPool = sync.Pool{New: func() any {
	return &pending{ack: make(chan error, 1), resp: make(chan Outcome, 1)}
}}

func putPending(p *pending) {
	p.task = task.Task{}
	p.ctx = nil
	pendingPool.Put(p)
}

// batchSub is one SubmitBatch/SubmitBatchAck call: many bids, one
// channel send. The core goroutine writes intake verdicts (and, for the
// collecting form, decisions) into caller-provided slices; the ack/done
// channels provide the happens-before edges that make those writes
// visible without locks.
type batchSub struct {
	tasks []task.Task
	ctx   context.Context
	// outcomes collects per-bid results for SubmitBatch; nil in ack-only
	// mode, where verdicts receives the intake verdicts instead.
	outcomes []Outcome
	verdicts []error
	// ack fires once intake verdicts are recorded (a non-nil value is a
	// whole-batch refusal: drain/kill caught the batch in the channel).
	ack chan error
	// done fires once every held bid of a collecting batch has its
	// outcome; remaining counts down on the core goroutine.
	done      chan struct{}
	remaining int
}

// heldBid is one bid awaiting its arrival slot's auction round. Exactly
// one of p / bs is set (or neither, for bids adopted from a batch whose
// submitter only wanted acks).
type heldBid struct {
	task task.Task
	ctx  context.Context
	p    *pending
	bs   *batchSub
	idx  int // index into bs.outcomes/bs.verdicts
}

// intakeMsg is one intake-channel message: a single bid or a batch.
type intakeMsg struct {
	p  *pending
	bs *batchSub
}

// Broker is the long-lived auction service. All auction state — duals,
// ledger, accounting, decided bids — is owned by the single core
// goroutine started by Start; the exported methods communicate with it
// through channels and are safe for concurrent use.
type Broker struct {
	opts    Options
	cl      *cluster.Cluster
	sched   sim.Scheduler
	horizon timeslot.Horizon
	o       obs.Observer

	intake chan intakeMsg
	ctl    chan func()
	done   chan struct{}

	started bool

	// chanFull429 counts submissions shed because the intake channel
	// itself was full; bumped by submitters (any goroutine), hence atomic.
	chanFull429 atomic.Int64

	// superseded is set by the supervisor when a newer generation takes
	// over this broker's on-disk state (checkpoint chain + journal). The
	// core goroutine checks it before any persistent write, so a wedged
	// goroutine that un-wedges after the swap cannot clobber its
	// successor's files. Written by the supervisor, read by the core
	// goroutine, hence atomic.
	superseded atomic.Bool

	// Everything below is owned by the core goroutine (and, before
	// Start, by the caller — Restore runs pre-Start).
	slot      int
	nextID    int
	held      map[int][]heldBid // arrival slot → bids awaiting that round
	heldIDs   map[int]struct{}
	heldCount int
	// heldFree recycles per-slot held batches (their backing arrays) so
	// steady-state intake stops allocating as batches churn.
	heldFree  [][]heldBid
	decisions map[int]schedule.Decision
	res       *sim.Result
	canceled  int
	ckptSlot  int // slot recorded by the last checkpoint write, -1 if none
	draining  bool
	killed    bool
	ckptErr   error
	// Intake observability (core-owned; surfaced via Status/expvar).
	intakeHW    int   // deepest intake-channel backlog observed
	heldHW      int   // most bids ever held at once
	heldFull429 int64 // submissions refused because held bids hit QueueSize
	// Checkpoint delta machinery: deltas is the open sidecar writer (nil
	// until the first full snapshot under CheckpointFullEvery > 1),
	// sinceFull counts delta writes since that snapshot, wroteFull
	// records that this process has a full snapshot on disk, and dirty
	// lists task IDs whose decisions changed since the last successful
	// persist.
	deltas    *deltaWriter
	sinceFull int
	wroteFull bool
	dirty     []int
	// Reusable per-bid scratch for the observer path and — only when no
	// fault plan is configured (the tracker retains env pointers) — the
	// task environment.
	envScratch schedule.TaskEnv
	bidEv      obs.BidEvent
	outEv      obs.OutcomeEvent
	placBuf    []obs.Placement
	// ckptFails counts consecutive checkpoint-write failures; reaching
	// Options.DegradeAfter flips /healthz to degraded.
	ckptFails int
	// faults replays Options.Failures with the simulator's semantics;
	// nil when no failures are configured (the steady state pays only
	// nil checks). A spot provider forces a (possibly empty) tracker:
	// revocations break plans through it.
	faults *sim.FailureTracker
	// spot is Options.Spot, bound to this broker's cluster and tracker.
	spot sim.SpotProvider
	// procIdx numbers processed bids in offer order — the tracker index
	// stream that makes recovery re-planning deterministic.
	procIdx int
	// spec runs the speculative parallel slot-close round when
	// Options.SpecWorkers > 1; nil keeps the sequential round. The env
	// pool and the per-bid quote-error scratch below exist only for that
	// path (the pool is safe precisely when no fault tracker retains env
	// pointers; with faults configured each bid gets a fresh env, as in
	// the sequential path).
	spec        *core.Speculator
	specEnvs    []schedule.TaskEnv
	specEnvPtrs []*schedule.TaskEnv
	specQErrs   []error
	// ckptW is the async checkpoint writer (Options.AsyncCheckpoint);
	// ckptStall, when set before Start, delays each write inside the
	// writer goroutine — the backpressure tests' stall hook.
	ckptW     *ckptWriter
	ckptStall func(slot int, full bool)
	// wal is the open bid journal (Options.WALPath); the replay counters
	// record what RecoverWAL did (bids re-held / skipped as already
	// decided / dropped as stale), walFails counts append and rotation
	// failures, walErr the most recent one.
	wal         *walWriter
	walReplayed int
	walDeduped  int
	walStale    int
	walFails    int
	walErr      error
}

// New builds a broker; call Restore to resume from a checkpoint, then
// Start to begin serving.
func New(opts Options) (*Broker, error) {
	if opts.Cluster == nil || opts.Scheduler == nil {
		return nil, fmt.Errorf("service: nil cluster or scheduler")
	}
	opts = opts.withDefaults()
	b := &Broker{
		opts:      opts,
		cl:        opts.Cluster,
		sched:     opts.Scheduler,
		horizon:   opts.Cluster.Horizon(),
		intake:    make(chan intakeMsg, opts.QueueSize),
		ctl:       make(chan func()),
		done:      make(chan struct{}),
		held:      map[int][]heldBid{},
		heldIDs:   map[int]struct{}{},
		decisions: map[int]schedule.Decision{},
		res:       sim.NewResult(opts.Scheduler.Name()),
		ckptSlot:  -1,
	}
	ft, err := sim.NewFailureTracker(opts.Failures, opts.Cluster)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if opts.Spot != nil && ft == nil {
		// Spot revocations flow through the tracker's plan-breaking
		// machinery even when no static outages are configured.
		ft = sim.NewEmptyFailureTracker(opts.Cluster)
	}
	if ft != nil {
		// A refunded task's decided outcome flips exactly as sim.Run
		// flips Result.Decisions: the admission is reversed, the payment
		// record stands (it was charged and refunded).
		ft.OnRefund = func(origID int) {
			if d, ok := b.decisions[origID]; ok {
				d.Admitted = false
				d.Reason = schedule.ReasonFailedNode
				b.decisions[origID] = d
				b.dirty = append(b.dirty, origID)
			}
		}
		b.faults = ft
	}
	if opts.Spot != nil {
		if err := opts.Spot.Bind(opts.Cluster, b.faults); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		b.spot = opts.Spot
	}
	if opts.SpecWorkers > 1 {
		cs, ok := opts.Scheduler.(*core.Scheduler)
		if !ok {
			return nil, fmt.Errorf("service: SpecWorkers requires the core auction scheduler, got %q", opts.Scheduler.Name())
		}
		b.spec = core.NewSpeculator(cs, opts.SpecWorkers)
	}
	return b, nil
}

// Start launches the core goroutine (and the real-clock ticker unless
// VirtualClock is set). It emits the run's RunStart event.
func (b *Broker) Start() error {
	if b.started {
		return ErrStarted
	}
	if b.opts.WALPath != "" && b.wal == nil {
		// RecoverWAL already opened (and seeded) the journal on a
		// restored broker; a fresh run starts one here.
		if err := b.openWAL(b.slot); err != nil {
			return err
		}
	}
	b.started = true
	b.o = obs.Stamp(b.opts.Observer, b.opts.RunLabel, b.sched.Name())
	if ob, ok := b.sched.(obs.Observable); ok && b.o != nil {
		ob.SetObserver(b.o)
	}
	if b.faults != nil {
		b.faults.Obs = b.o
	}
	if b.o != nil {
		capWork := make([]int, b.cl.NumNodes())
		for k := range capWork {
			capWork[k] = b.cl.Node(k).CapWork
		}
		b.o.OnRunStart(&obs.RunStartEvent{Nodes: b.cl.NumNodes(), Slots: b.horizon.T, CapWork: capWork})
	}
	if b.opts.AsyncCheckpoint && b.opts.CheckpointPath != "" {
		b.ckptW = newCkptWriter(b.ckptStall, &b.superseded)
		go b.ckptW.run()
	}
	go b.loop()
	return nil
}

// Done is closed when the core goroutine has stopped (drain, kill, or
// horizon end does not stop it; only Drain/Kill do). After Done, the
// scheduler and cluster are safe to inspect from any goroutine.
func (b *Broker) Done() <-chan struct{} { return b.done }

// SubmitAsync hands one bid to the broker and returns a channel that will
// deliver the decision when the bid's arrival slot closes. The error
// return reports intake verdicts synchronously: a full queue, a closed
// arrival slot, a duplicate ID, or an invalid task. A task with negative
// Arrival is stamped with the current slot ("bid now"); a negative ID is
// assigned the next free one (readable from the returned outcome).
func (b *Broker) SubmitAsync(ctx context.Context, t task.Task) (<-chan Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := &pending{task: t, ctx: ctx, ack: make(chan error, 1), resp: make(chan Outcome, 1)}
	select {
	case b.intake <- intakeMsg{p: p}:
	case <-b.done:
		return nil, b.closeErr()
	default:
		b.chanFull429.Add(1)
		return nil, ErrChannelFull
	}
	select {
	case err := <-p.ack:
		if err != nil {
			return nil, err
		}
		return p.resp, nil
	case <-ctx.Done():
		// The core loop may still hold the bid; its context check at
		// round time skips it.
		return nil, ctx.Err()
	case <-b.done:
		return nil, b.closeErr()
	}
}

// Submit is SubmitAsync plus the wait: it blocks until the bid's slot
// closes and returns the irrevocable decision. ctx bounds the whole
// round trip — a canceled bid is skipped if its round has not run yet
// (decisions already made are irrevocable and remain queryable via
// DecisionFor). Unlike SubmitAsync, the synchronous form recycles its
// intake object through a pool: both channels are fully consumed before
// returning, so steady-state Submit traffic allocates nothing on the
// intake path.
func (b *Broker) Submit(ctx context.Context, t task.Task) (schedule.Decision, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := pendingPool.Get().(*pending)
	p.task, p.ctx = t, ctx
	select {
	case b.intake <- intakeMsg{p: p}:
	case <-b.done:
		putPending(p)
		return schedule.Decision{}, b.closeErr()
	default:
		putPending(p)
		b.chanFull429.Add(1)
		return schedule.Decision{}, ErrChannelFull
	}
	select {
	case err := <-p.ack:
		if err != nil {
			// Refused at intake: no outcome will follow, both channels are
			// empty again.
			putPending(p)
			return schedule.Decision{}, err
		}
	case <-ctx.Done():
		// The core loop still owns p (it answers resp at round time or
		// shutdown); the object retires instead of recycling.
		return schedule.Decision{}, ctx.Err()
	case <-b.done:
		return schedule.Decision{}, b.closeErr()
	}
	select {
	case out := <-p.resp:
		putPending(p)
		return out.Decision, out.Err
	case <-ctx.Done():
		return schedule.Decision{}, ctx.Err()
	case <-b.done:
		// Shutdown answers every held bid before closing done, so the
		// refusal outcome is already buffered; drain it and recycle.
		select {
		case out := <-p.resp:
			putPending(p)
			return out.Decision, out.Err
		default:
			return schedule.Decision{}, b.closeErr()
		}
	}
}

// SubmitBatch hands a whole slice of bids to the broker in one intake
// message — the coalesced fast path the load generator and the batch
// HTTP endpoint use — and blocks until every accepted bid's slot has
// closed. It returns one Outcome per input task, positionally: an
// intake refusal (full queue, duplicate ID, past slot, validation)
// rides in that bid's Outcome.Err without failing the rest of the
// batch. A whole-batch error is returned only when the broker shuts
// down or ctx expires before the results are complete; the outcome
// slice is invalid in that case.
//
// Compared with n Submit calls, a batch costs one channel send and one
// ack wait regardless of n, and the per-bid bookkeeping lives in two
// caller-visible slices instead of n heap-allocated pendings.
func (b *Broker) SubmitBatch(ctx context.Context, tasks []task.Task) ([]Outcome, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	bs := &batchSub{
		tasks:    tasks,
		ctx:      ctx,
		outcomes: make([]Outcome, len(tasks)),
		ack:      make(chan error, 1),
		done:     make(chan struct{}),
	}
	if err := b.sendBatch(ctx, bs); err != nil {
		return nil, err
	}
	select {
	case <-bs.done:
		return bs.outcomes, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.done:
		// Shutdown answered every held bid before closing done.
		select {
		case <-bs.done:
			return bs.outcomes, nil
		default:
			return nil, b.closeErr()
		}
	}
}

// SubmitBatchAck is the fire-and-forget half of SubmitBatch: it returns
// as soon as the intake verdicts are in, without waiting for the slot
// to close. verdicts must have len(tasks) entries; the broker writes
// every position (nil = held for auction). The returned count is how
// many bids were held. Decisions are later readable via DecisionFor or
// an Observer. The caller must not touch tasks or verdicts again until
// the call returns.
func (b *Broker) SubmitBatchAck(ctx context.Context, tasks []task.Task, verdicts []error) (int, error) {
	if len(tasks) == 0 {
		return 0, nil
	}
	if len(verdicts) != len(tasks) {
		return 0, fmt.Errorf("service: verdicts len %d, want %d", len(verdicts), len(tasks))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	bs := &batchSub{tasks: tasks, ctx: ctx, verdicts: verdicts, ack: make(chan error, 1)}
	if err := b.sendBatch(ctx, bs); err != nil {
		return 0, err
	}
	return bs.remaining, nil
}

// sendBatch performs the channel send and the ack wait shared by both
// batch forms.
func (b *Broker) sendBatch(ctx context.Context, bs *batchSub) error {
	select {
	case b.intake <- intakeMsg{bs: bs}:
	case <-b.done:
		return b.closeErr()
	default:
		b.chanFull429.Add(1)
		return ErrChannelFull
	}
	select {
	case err := <-bs.ack:
		return err
	case <-ctx.Done():
		return ctx.Err()
	case <-b.done:
		// The loop acks every message it dequeues while stopping; the
		// message was sent, so the ack is in flight or buffered.
		select {
		case err := <-bs.ack:
			return err
		default:
			return b.closeErr()
		}
	}
}

// closeErr distinguishes a drained broker from a killed one.
func (b *Broker) closeErr() error {
	if b.draining {
		return ErrDraining
	}
	return ErrClosed
}

// do runs f on the core goroutine and waits for it.
func (b *Broker) do(f func()) error {
	ran := make(chan struct{})
	select {
	case b.ctl <- func() { f(); close(ran) }:
	case <-b.done:
		return b.closeErr()
	}
	select {
	case <-ran:
		return nil
	case <-b.done:
		// The loop executes the control function it accepted even while
		// stopping, so reaching here means it ran.
		return nil
	}
}

// Step closes n slots of a virtual-clock broker — each close runs the
// slot's auction round — and returns the new current slot. Stepping past
// the horizon end is clamped.
func (b *Broker) Step(n int) (int, error) {
	if !b.opts.VirtualClock {
		return 0, ErrRealClock
	}
	if n < 0 {
		return 0, fmt.Errorf("service: negative step %d", n)
	}
	var slot int
	err := b.do(func() {
		for i := 0; i < n && b.slot < b.horizon.T; i++ {
			b.closeSlot()
		}
		slot = b.slot
	})
	return slot, err
}

// Slot returns the current slot (the one accepting bids).
func (b *Broker) Slot() (int, error) {
	var s int
	err := b.do(func() { s = b.slot })
	return s, err
}

// DecisionFor returns the decided outcome for a task ID. Decisions are
// irrevocable, so they remain queryable after the broker stops (the core
// goroutine is gone by then; direct reads are race-free).
func (b *Broker) DecisionFor(id int) (schedule.Decision, bool, error) {
	var (
		d  schedule.Decision
		ok bool
	)
	if err := b.do(func() { d, ok = b.decisions[id] }); err != nil {
		d, ok = b.decisions[id]
	}
	return d, ok, nil
}

// PendingFor reports whether a task ID is held awaiting its slot's
// auction round — acked but undecided. With it, GET /v1/decisions/{id}
// can distinguish "acked, pending slot close" from "never seen".
func (b *Broker) PendingFor(id int) (bool, error) {
	var ok bool
	if err := b.do(func() { _, ok = b.heldIDs[id] }); err != nil {
		// A stopped broker holds nothing (shutdown refused every held
		// bid), and its maps are race-free to read.
		_, ok = b.heldIDs[id]
	}
	return ok, nil
}

// Duals snapshots the scheduler's current dual prices, running on the
// core goroutine so it is safe on a started broker (SnapshotDuals alone
// is not — the core goroutine owns the scheduler). The second return is
// false when the scheduler publishes no dual state (greedy baselines).
// The sharded router calls this after each slot close to republish the
// shard's price quote.
func (b *Broker) Duals() (core.DualState, bool) {
	dc, ok := b.sched.(DualCheckpointer)
	if !ok {
		return core.DualState{}, false
	}
	var ds core.DualState
	if err := b.do(func() { ds = dc.SnapshotDuals() }); err != nil {
		// Stopped broker: the core goroutine is gone, direct reads are
		// race-free.
		return dc.SnapshotDuals(), true
	}
	return ds, true
}

// Status is a point-in-time operational summary.
type Status struct {
	Run         string `json:"run"`
	Scheduler   string `json:"scheduler"`
	Slot        int    `json:"slot"`
	Slots       int    `json:"horizon_slots"`
	VirtualTime bool   `json:"virtual_clock"`
	HorizonOver bool   `json:"horizon_over"`
	Held        int    `json:"held_bids"`
	QueueCap    int    `json:"queue_cap"`
	// Intake-path observability: the channel between submitters and the
	// core goroutine (depth now / deepest ever) and the held-bid high
	// water mark, plus separate shed tallies for the two 429 causes —
	// a full intake channel (core goroutine behind) vs. the held-bid
	// budget (slots not closing fast enough).
	IntakeDepth     int     `json:"intake_depth"`
	IntakeCap       int     `json:"intake_cap"`
	IntakeHighWater int     `json:"intake_high_water"`
	HeldHighWater   int     `json:"held_high_water"`
	ShedChannelFull int64   `json:"shed_channel_full"`
	ShedHeldFull    int64   `json:"shed_held_full"`
	Decided         int     `json:"decided"`
	Admitted        int     `json:"admitted"`
	Rejected        int     `json:"rejected"`
	Canceled        int     `json:"canceled"`
	Welfare         float64 `json:"welfare"`
	Revenue         float64 `json:"revenue"`
	Utilization     float64 `json:"utilization"`
	// MaxLambda/MaxPhi are the current largest dual prices across all
	// (k,t) cells — the auction's congestion signal. Zero when the
	// scheduler exposes no dual state.
	MaxLambda float64 `json:"max_lambda"`
	MaxPhi    float64 `json:"max_phi"`
	// CheckpointSlot is the slot recorded by the last checkpoint write
	// (-1 before the first); CheckpointError carries a persist failure.
	CheckpointSlot  int    `json:"checkpoint_slot"`
	CheckpointError string `json:"checkpoint_error,omitempty"`
	// CheckpointFailures counts consecutive failed checkpoint writes
	// (reset by a success); SlotsSinceCheckpoint is how many slots have
	// closed since the last persisted one. Both are zero when no
	// checkpoint path is configured.
	CheckpointFailures   int `json:"checkpoint_failures,omitempty"`
	SlotsSinceCheckpoint int `json:"slots_since_checkpoint,omitempty"`
	// Degraded mirrors /healthz: the broker keeps deciding bids but its
	// durability guarantee is broken (checkpoint writes keep failing).
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Speculative slot-close counters (zero unless Options.SpecWorkers
	// > 1): workers in the pool, and how many bids committed their
	// tentative decision (hits) vs. re-ran sequentially (misses).
	SpecWorkers int    `json:"spec_workers,omitempty"`
	SpecHits    uint64 `json:"spec_hits,omitempty"`
	SpecMisses  uint64 `json:"spec_misses,omitempty"`
	// Failure-injection accounting (zero unless Options.Failures is set).
	FailuresInjected int     `json:"failures_injected,omitempty"`
	RecoveredTasks   int     `json:"recovered_tasks,omitempty"`
	FailedTasks      int     `json:"failed_tasks,omitempty"`
	RefundedValue    float64 `json:"refunded_value,omitempty"`
	// Spot-market accounting (zero unless Options.Spot is set).
	SpotSpend       float64 `json:"spot_spend,omitempty"`
	SpotLeases      int     `json:"spot_leases,omitempty"`
	SpotLeasedSlots int     `json:"spot_leased_slots,omitempty"`
	SpotRevocations int     `json:"spot_revocations,omitempty"`
	// Write-ahead journal gauges (zero unless Options.WALPath is set):
	// records appended over the run, records live in the journal file
	// (its depth — one checkpoint interval of acked bids), bytes
	// written, fsync count with cumulative and worst-case latency, bids
	// re-held by RecoverWAL (and skipped as already-decided duplicates /
	// dropped as stale), and append/rotate failures with the most recent
	// error.
	WALRecords    int64  `json:"wal_records,omitempty"`
	WALDepth      int64  `json:"wal_depth,omitempty"`
	WALBytes      int64  `json:"wal_bytes,omitempty"`
	WALFsyncs     int64  `json:"wal_fsyncs,omitempty"`
	WALFsyncNanos int64  `json:"wal_fsync_ns,omitempty"`
	WALFsyncMaxNS int64  `json:"wal_fsync_max_ns,omitempty"`
	WALReplayed   int    `json:"wal_replayed,omitempty"`
	WALDeduped    int    `json:"wal_deduped,omitempty"`
	WALStale      int    `json:"wal_stale,omitempty"`
	WALFailures   int    `json:"wal_failures,omitempty"`
	WALError      string `json:"wal_error,omitempty"`
}

// Status reports the broker's current state.
func (b *Broker) Status() (Status, error) {
	var st Status
	err := b.do(func() { st = b.status() })
	if err != nil {
		// A stopped broker still has consistent state: the core loop is
		// gone, so reading directly is race-free.
		return b.status(), nil
	}
	return st, err
}

// ExposeExpvar publishes the broker's Status under the given expvar
// name (default "pdftspd"), so /debug/vars surfaces the intake-path
// gauges next to the observer metrics. Publishing the same name twice
// panics in expvar, so re-exposing is a no-op — the var reflects the
// broker it was first bound to.
func (b *Broker) ExposeExpvar(name string) {
	if name == "" {
		name = "pdftspd"
	}
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		st, _ := b.Status()
		return st
	}))
}

// status builds the summary; core-goroutine (or post-Done) only.
func (b *Broker) status() Status {
	st := Status{
		Run:             b.opts.RunLabel,
		Scheduler:       b.sched.Name(),
		Slot:            b.slot,
		Slots:           b.horizon.T,
		VirtualTime:     b.opts.VirtualClock,
		HorizonOver:     b.slot >= b.horizon.T,
		Held:            b.heldCount,
		QueueCap:        b.opts.QueueSize,
		IntakeDepth:     len(b.intake),
		IntakeCap:       cap(b.intake),
		IntakeHighWater: b.intakeHW,
		HeldHighWater:   b.heldHW,
		ShedChannelFull: b.chanFull429.Load(),
		ShedHeldFull:    b.heldFull429,
		Decided:         len(b.decisions),
		Admitted:        b.res.Admitted,
		Rejected:        b.res.Rejected,
		Canceled:        b.canceled,
		Welfare:         b.res.Welfare,
		Revenue:         b.res.Revenue,
		Utilization:     b.cl.Utilization(),
		CheckpointSlot:  b.ckptSlot,
	}
	if b.ckptErr != nil {
		st.CheckpointError = b.ckptErr.Error()
	}
	st.CheckpointFailures = b.ckptFails
	if b.opts.CheckpointPath != "" {
		if b.ckptSlot >= 0 {
			st.SlotsSinceCheckpoint = b.slot - b.ckptSlot
		} else {
			st.SlotsSinceCheckpoint = b.slot
		}
	}
	if h := b.health(); h.Status != "ok" {
		st.Degraded = true
		st.DegradedReason = h.Reason
	}
	if b.spec != nil {
		st.SpecWorkers = b.spec.Workers()
		st.SpecHits, st.SpecMisses = b.spec.Stats()
	}
	st.FailuresInjected = b.res.FailuresInjected
	st.RecoveredTasks = b.res.RecoveredTasks
	st.FailedTasks = b.res.FailedTasks
	st.RefundedValue = b.res.RefundedValue
	st.SpotSpend = b.res.SpotSpend
	st.SpotLeases = b.res.SpotLeases
	st.SpotLeasedSlots = b.res.SpotLeasedSlots
	st.SpotRevocations = b.res.SpotRevocations
	if b.wal != nil {
		st.WALRecords = b.wal.records
		st.WALDepth = b.wal.depth
		st.WALBytes = b.wal.bytes
		st.WALFsyncs = b.wal.fsyncs
		st.WALFsyncNanos = b.wal.fsyncNS
		st.WALFsyncMaxNS = b.wal.fsyncMaxNS
	}
	st.WALReplayed = b.walReplayed
	st.WALDeduped = b.walDeduped
	st.WALStale = b.walStale
	st.WALFailures = b.walFails
	if b.walErr != nil {
		st.WALError = b.walErr.Error()
	}
	if dc, ok := b.sched.(DualCheckpointer); ok {
		ds := dc.SnapshotDuals()
		for k := range ds.Lambda {
			for t := range ds.Lambda[k] {
				if ds.Lambda[k][t] > st.MaxLambda {
					st.MaxLambda = ds.Lambda[k][t]
				}
				if ds.Phi[k][t] > st.MaxPhi {
					st.MaxPhi = ds.Phi[k][t]
				}
			}
		}
	}
	return st
}

// Health is the degradation verdict behind GET /healthz. Status is "ok"
// or "degraded"; Reason explains a degradation.
type Health struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// Health reports whether the broker is serving at full guarantees. A
// degraded broker still decides bids — the auction does not need the
// disk — but its checkpoint durability is gone, so operators should
// route new horizons elsewhere and fix the disk. A stopped broker also
// reports degraded (with the stop reason).
func (b *Broker) Health() Health {
	var h Health
	if err := b.do(func() { h = b.health() }); err != nil {
		return Health{Status: "degraded", Reason: err.Error()}
	}
	return h
}

// health builds the verdict; core-goroutine only.
func (b *Broker) health() Health {
	if b.opts.CheckpointPath != "" && b.ckptFails >= b.opts.DegradeAfter {
		return Health{
			Status: "degraded",
			Reason: fmt.Sprintf("checkpoint writes failing for %d consecutive slots (last: %v)", b.ckptFails, b.ckptErr),
		}
	}
	return Health{Status: "ok"}
}

// Drain stops the broker gracefully: intake closes, bids already held
// are refused with ErrDraining (their slots have not closed, so clients
// resubmit after restart), the checkpoint is written one last time, and
// the run's RunEnd event is emitted. ctx bounds the wait.
func (b *Broker) Drain(ctx context.Context) error {
	if err := b.do(func() { b.draining = true }); err != nil {
		return nil // already stopped
	}
	select {
	case <-b.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Kill crash-stops the broker: no final checkpoint, no RunEnd — exactly
// what a SIGKILL mid-horizon leaves behind. Held bids are refused with
// ErrClosed. The checkpoint-restore tests use it to prove a restore from
// the last persisted slot resumes bit-exactly.
func (b *Broker) Kill() {
	_ = b.do(func() { b.killed = true })
	<-b.done
}

// Supersede marks this broker as replaced by a newer generation that
// now owns its on-disk state. From this point the broker writes neither
// checkpoint nor journal: a wedged core goroutine that un-wedges after
// the supervisor swapped in a successor finishes any in-flight write on
// its own (orphaned, rename-detached) descriptors but refuses every new
// persist — in particular it can no longer rename a stale journal or
// checkpoint over the successor's live files. The supervisor calls it
// before rebuilding; it is irreversible and safe from any goroutine.
func (b *Broker) Supersede() { b.superseded.Store(true) }

// persistGuard is the last-gate check persistent writes run before
// publishing (renaming) a file: a superseded broker's write — possibly
// stalled since before the swap — must not land.
func (b *Broker) persistGuard() error {
	if b.superseded.Load() {
		return errSuperseded
	}
	return nil
}

// loop is the core goroutine: the only owner of the auction state.
func (b *Broker) loop() {
	defer close(b.done)
	defer func() {
		if ob, ok := b.sched.(obs.Observable); ok && b.o != nil {
			ob.SetObserver(nil)
		}
	}()
	var tick <-chan time.Time
	if !b.opts.VirtualClock {
		ticker := time.NewTicker(b.opts.SlotDuration)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case m := <-b.intake:
			b.intakeRecv(m)
		case f := <-b.ctl:
			f()
		case <-tick:
			if b.slot < b.horizon.T {
				b.closeSlot()
			}
		}
		if b.killed {
			b.refuseHeld(ErrClosed)
			b.closeCkptWriter()
			b.closeDeltas()
			b.closeWAL()
			return
		}
		if b.draining {
			// The held bids just refused stay journaled: the drain
			// checkpoint covers only closed slots, so rotation retains
			// their records and a restart re-offers them (fire-and-forget
			// submitters never see the ErrDraining answer).
			b.refuseHeld(ErrDraining)
			b.writeCheckpoint()
			b.closeCkptWriter()
			b.closeDeltas()
			b.closeWAL()
			b.emitRunEnd()
			return
		}
	}
}

// answer delivers hb's outcome to whoever is waiting on it (if anyone).
func (b *Broker) answer(hb *heldBid, out Outcome) {
	switch {
	case hb.p != nil:
		hb.p.resp <- out
	case hb.bs != nil:
		if hb.bs.outcomes != nil {
			hb.bs.outcomes[hb.idx] = out
			hb.bs.remaining--
			if hb.bs.remaining == 0 {
				close(hb.bs.done)
			}
		}
	}
}

// refuseHeld answers every held bid with err.
func (b *Broker) refuseHeld(err error) {
	for _, batch := range b.held {
		for i := range batch {
			b.answer(&batch[i], Outcome{Err: err})
		}
	}
	b.held = map[int][]heldBid{}
	b.heldIDs = map[int]struct{}{}
	b.heldCount = 0
	// Messages still in the intake channel never got an ack; answer it.
	for {
		select {
		case m := <-b.intake:
			if m.p != nil {
				m.p.ack <- err
			} else {
				m.bs.ack <- err
			}
		default:
			return
		}
	}
}

// intakeRecv dispatches one intake message: a single bid is checked and
// held, a batch runs the same checks bid by bid, recording per-bid
// verdicts. Either way, exactly one ack answers the submitter — and
// with a journal configured, only after the message's held bids are on
// disk (walCommit): the ack is the durability promise.
func (b *Broker) intakeRecv(m intakeMsg) {
	if d := len(b.intake) + 1; d > b.intakeHW {
		b.intakeHW = d
	}
	if m.p != nil {
		err := b.hold(&m.p.task, m.p.ctx, m.p, nil, 0)
		if err == nil {
			err = b.walCommit()
		}
		m.p.ack <- err
		return
	}
	bs := m.bs
	// The fire-and-forget form commits its bids at the ack: the submitter
	// stops listening the moment SubmitBatchAck returns (an HTTP handler's
	// request context dies with the response), so a held bid must not
	// carry a ctx that cancels it before its slot closes.
	hctx := bs.ctx
	if bs.verdicts != nil {
		hctx = context.Background()
	}
	held := 0
	for i := range bs.tasks {
		err := b.hold(&bs.tasks[i], hctx, nil, bs, i)
		if err == nil {
			held++
		}
		switch {
		case bs.outcomes != nil:
			bs.outcomes[i] = Outcome{Err: err}
		case bs.verdicts != nil:
			bs.verdicts[i] = err
		}
	}
	// One journal write and fsync covers the whole batch; on failure the
	// just-held bids were un-held, so their verdicts flip to the journal
	// error before the ack releases.
	if werr := b.walCommit(); werr != nil {
		for i := range bs.tasks {
			switch {
			case bs.outcomes != nil:
				if bs.outcomes[i].Err == nil {
					bs.outcomes[i] = Outcome{Err: werr}
				}
			case bs.verdicts != nil:
				if bs.verdicts[i] == nil {
					bs.verdicts[i] = werr
				}
			}
		}
		held = 0
	}
	// remaining is read by SubmitBatchAck after the ack (held count) and
	// counted down by answer for the collecting form; both orderings run
	// through the ack's happens-before edge.
	bs.remaining = held
	if bs.outcomes != nil && held == 0 {
		close(bs.done)
	}
	bs.ack <- nil
}

// hold performs the intake checks and holds the bid for its round. The
// task is stamped in place (assigned ID / current-slot arrival), so
// batch submitters can read the assignments back out of their slice.
func (b *Broker) hold(t *task.Task, ctx context.Context, p *pending, bs *batchSub, idx int) error {
	if b.slot >= b.horizon.T {
		return ErrHorizonOver
	}
	if t.Arrival < 0 {
		t.Arrival = b.slot
	}
	if t.ID < 0 {
		t.ID = b.nextID
	}
	if t.Arrival < b.slot {
		return fmt.Errorf("%w: arrival %d, current slot %d", ErrPastSlot, t.Arrival, b.slot)
	}
	if err := t.Validate(b.horizon); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if _, dup := b.decisions[t.ID]; dup {
		return fmt.Errorf("%w: %d already decided", ErrDuplicateID, t.ID)
	}
	if _, dup := b.heldIDs[t.ID]; dup {
		return fmt.Errorf("%w: %d already held", ErrDuplicateID, t.ID)
	}
	if b.heldCount >= b.opts.QueueSize {
		b.heldFull429++
		return ErrHeldFull
	}
	if b.wal != nil && b.wal.broken {
		// The journal's tail is unaccounted for; refusing keeps "acked ⇒
		// journaled" true until a rotation rewrites the file.
		return ErrWAL
	}
	if t.ID >= b.nextID {
		b.nextID = t.ID + 1
	}
	slot := b.held[t.Arrival]
	if slot == nil && len(b.heldFree) > 0 {
		slot = b.heldFree[len(b.heldFree)-1]
		b.heldFree = b.heldFree[:len(b.heldFree)-1]
	}
	b.held[t.Arrival] = append(slot, heldBid{task: *t, ctx: ctx, p: p, bs: bs, idx: idx})
	b.heldIDs[t.ID] = struct{}{}
	b.heldCount++
	if b.heldCount > b.heldHW {
		b.heldHW = b.heldCount
	}
	if b.wal != nil {
		b.wal.stage(t)
	}
	return nil
}

// closeSlot runs the current slot's auction round — all bids with this
// arrival, in ID order, exactly the order a pre-sorted batch replay
// visits them — then advances the clock and checkpoints.
func (b *Broker) closeSlot() {
	batch := b.held[b.slot]
	delete(b.held, b.slot)
	sort.Slice(batch, func(i, j int) bool { return batch[i].task.ID < batch[j].task.ID })
	live := batch[:0]
	for i := range batch {
		hb := batch[i]
		delete(b.heldIDs, hb.task.ID)
		b.heldCount--
		if err := hb.ctx.Err(); err != nil {
			// The submitter is gone; the bid never enters the auction.
			b.canceled++
			b.answer(&hb, Outcome{Err: err})
			continue
		}
		live = append(live, hb)
	}
	// Outages surface lazily, before a round that offers any bids —
	// mirroring sim.Run, which applies failures only when an arrival
	// forces the clock forward. An empty (or fully canceled) round leaves
	// them pending, so the replan-time ledger matches a sequential replay
	// of the same bids exactly. Spot-market events run first at the same
	// trigger points — reclaims of a slot surface before its static
	// outages in both engines.
	if len(live) > 0 {
		if b.spot != nil {
			b.spot.AdvanceTo(b.slot, b.sched, b.res)
		}
		b.faults.ApplyUpTo(b.slot, b.sched, b.res)
	}
	if b.spec != nil && len(live) > 1 {
		b.processSpeculative(live)
	} else {
		for i := range live {
			b.process(&live[i])
		}
	}
	if batch != nil {
		// The slot's backing array is dead; recycle it for a future slot.
		b.heldFree = append(b.heldFree, batch[:0])
	}
	b.slot++
	if b.slot >= b.horizon.T {
		// Outages after the last round still break committed plans,
		// exactly as sim.Run applies them after its last arrival.
		if b.spot != nil {
			b.spot.AdvanceTo(b.horizon.T-1, b.sched, b.res)
		}
		b.faults.ApplyUpTo(b.horizon.T-1, b.sched, b.res)
		b.emitRunEnd()
	}
	if b.slot%b.opts.CheckpointEvery == 0 || b.slot >= b.horizon.T {
		b.writeCheckpoint()
	}
}

// process runs Algorithm 1 for one live bid and answers its submitter.
// The steady state reuses one TaskEnv and the observer event buffers
// across bids; only a configured fault plan forces per-bid envs (the
// tracker retains each admitted bid's env for replan time).
func (b *Broker) process(hb *heldBid) {
	mkt := b.opts.Market
	if b.opts.Quotes != nil {
		mkt = nil // quotes come from the fallible client below
	}
	var env *schedule.TaskEnv
	if b.faults != nil {
		env = schedule.NewTaskEnv(&hb.task, b.cl, b.opts.Model, mkt)
	} else {
		env = &b.envScratch
		env.Refill(&hb.task, b.cl, b.opts.Model, mkt)
	}
	var qErr error
	if b.opts.Quotes != nil && hb.task.NeedsPrep {
		var q []vendor.Quote
		if q, qErr = b.opts.Quotes.Call(hb.task.ID, b.slot); qErr == nil {
			env.Quotes = q
		}
	}
	if b.o != nil {
		sim.FillBidEvent(&b.bidEv, env)
		b.o.OnBid(&b.bidEv)
	}
	start := time.Now()
	d := b.sched.Offer(env)
	b.res.OfferLatency = append(b.res.OfferLatency, time.Since(start))
	sim.TagVendorDown(&d, qErr)
	if b.o != nil {
		b.placBuf = sim.FillOutcomeEvent(&b.outEv, env, &d, b.placBuf[:0])
		b.o.OnOutcome(&b.outEv)
	}
	b.res.Account(env, &d)
	b.faults.Track(b.procIdx, env, &d)
	b.procIdx++
	if b.opts.DropLosingPlans && !d.Admitted {
		d.Schedule = nil
	}
	b.decisions[hb.task.ID] = d
	b.dirty = append(b.dirty, hb.task.ID)
	b.answer(hb, Outcome{Decision: d})
}

// processSpeculative runs one slot's round through the speculative
// parallel path: envs and vendor quotes are prepared sequentially in ID
// order (so the fallible quote client sees exactly the sequential call
// sequence), the batch fans across the Speculator's worker pool, and the
// commit loop then replays the sequential round's per-bid side effects —
// observer events, latency samples, accounting, fault tracking, the
// submitter's answer — in the same order the plain loop produces them.
func (b *Broker) processSpeculative(live []heldBid) {
	n := len(live)
	mkt := b.opts.Market
	if b.opts.Quotes != nil {
		mkt = nil // quotes come from the fallible client below
	}
	if b.faults == nil && len(b.specEnvs) < n {
		b.specEnvs = make([]schedule.TaskEnv, n)
	}
	envs := b.specEnvPtrs[:0]
	qErrs := b.specQErrs[:0]
	for i := range live {
		var env *schedule.TaskEnv
		if b.faults != nil {
			// The tracker retains each admitted bid's env for replan time,
			// exactly like the sequential path.
			env = schedule.NewTaskEnv(&live[i].task, b.cl, b.opts.Model, mkt)
		} else {
			env = &b.specEnvs[i]
			env.Refill(&live[i].task, b.cl, b.opts.Model, mkt)
		}
		var qErr error
		if b.opts.Quotes != nil && live[i].task.NeedsPrep {
			var q []vendor.Quote
			if q, qErr = b.opts.Quotes.Call(live[i].task.ID, b.slot); qErr == nil {
				env.Quotes = q
			}
		}
		envs = append(envs, env)
		qErrs = append(qErrs, qErr)
	}
	b.specEnvPtrs, b.specQErrs = envs, qErrs
	b.spec.Plan(envs)
	for i := range live {
		hb := &live[i]
		env := envs[i]
		if b.o != nil {
			sim.FillBidEvent(&b.bidEv, env)
			b.o.OnBid(&b.bidEv)
		}
		start := time.Now()
		d, _ := b.spec.Commit(i)
		b.res.OfferLatency = append(b.res.OfferLatency, time.Since(start))
		sim.TagVendorDown(&d, qErrs[i])
		if b.o != nil {
			b.placBuf = sim.FillOutcomeEvent(&b.outEv, env, &d, b.placBuf[:0])
			b.o.OnOutcome(&b.outEv)
		}
		b.res.Account(env, &d)
		b.faults.Track(b.procIdx, env, &d)
		b.procIdx++
		if b.opts.DropLosingPlans && !d.Admitted {
			d.Schedule = nil
		}
		b.decisions[hb.task.ID] = d
		b.dirty = append(b.dirty, hb.task.ID)
		b.answer(hb, Outcome{Decision: d})
	}
}

// emitRunEnd closes the observer stream with the final accounting; it
// fires once (horizon end or drain, whichever comes first).
func (b *Broker) emitRunEnd() {
	// The final utilization belongs to the run accounting whether or not
	// anyone is observing — sim.Run always records it.
	b.res.Utilization = b.cl.Utilization()
	if b.o == nil {
		return
	}
	o := b.o
	b.o = nil
	o.OnRunEnd(&obs.RunEndEvent{
		Welfare:     b.res.Welfare,
		Revenue:     b.res.Revenue,
		VendorSpend: b.res.VendorSpend,
		EnergySpend: b.res.EnergySpend,
		Admitted:    b.res.Admitted,
		Rejected:    b.res.Rejected,
		Utilization: b.res.Utilization,
		Failures:    b.res.FailuresInjected,
		Cluster:     b.cl,
	})
	if ob, ok := b.sched.(obs.Observable); ok {
		ob.SetObserver(nil)
	}
}

// Brokers returns the fleet members behind this Auctioneer — for a
// monolithic broker, itself. Callers that need per-shard detail (chaos
// harnesses, verify twins) iterate this instead of special-casing the
// fleet shape.
func (b *Broker) Brokers() []*Broker { return []*Broker{b} }

// Result returns the run accounting. Safe only after Done (the tests
// call it post-drain); a live broker reports through Status instead.
func (b *Broker) Result() *sim.Result {
	select {
	case <-b.done:
	default:
		if b.started {
			panic("service: Result on a running broker (use Status)")
		}
	}
	return b.res
}
