package service

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"github.com/pdftsp/pdftsp/internal/cluster"
	"github.com/pdftsp/pdftsp/internal/core"
	"github.com/pdftsp/pdftsp/internal/schedule"
	"github.com/pdftsp/pdftsp/internal/sim"
)

// checkpointVersion guards against restoring a snapshot written by an
// incompatible broker.
const checkpointVersion = 1

// Checkpoint is the broker's full persisted auction state. Every number
// in it round-trips bit-exactly through encoding/json (Go prints the
// shortest float64 representation that re-parses to the same bits), so a
// restore resumes with byte-identical duals and ledger — the property
// the kill/restore tests assert.
//
// Held (undecided) bids are not part of the checkpoint: their slots have
// not closed, so no auction state depends on them, and their submitters'
// response channels cannot survive a process death anyway. Their
// durability lives in the write-ahead journal instead (Options.WALPath,
// wal.go): RecoverWAL re-holds every acked-but-undecided bid after
// Restore, so no resubmission is needed. Without a journal configured,
// the pre-WAL contract applies — clients that see ErrDraining/ErrClosed
// resubmit after restart.
type Checkpoint struct {
	Version   int    `json:"version"`
	RunLabel  string `json:"run"`
	Scheduler string `json:"scheduler"`
	// Slot is the next slot to accept bids (everything before it has
	// closed).
	Slot   int `json:"slot"`
	NextID int `json:"next_id"`
	// Nodes and Slots pin the cluster shape the snapshot belongs to.
	Nodes int `json:"nodes"`
	Slots int `json:"slots"`
	// Duals is λ/φ for dual-price schedulers; nil for baselines.
	Duals *core.DualState `json:"duals,omitempty"`
	// Ledger is the cluster's committed work/memory state.
	Ledger cluster.Snapshot `json:"ledger"`
	// Result is the run accounting so far.
	Result *sim.Result `json:"result"`
	// Decisions maps task ID → its irrevocable outcome.
	Decisions map[int]CheckpointDecision `json:"decisions"`
	Canceled  int                        `json:"canceled"`
	// ProcIdx is the number of bids offered so far — the fault tracker's
	// offer-order index stream. Zero in pre-fault-layer checkpoints,
	// which is only read when Failures is also absent.
	ProcIdx int `json:"proc_idx,omitempty"`
	// Failures is the fault tracker's progress (applied outages, live
	// committed plans); nil when the broker has no fault plan.
	Failures *sim.FailureTrackerState `json:"failures,omitempty"`
	// Spot is the spot provider's progress (trace cursor, budget spent,
	// live leases); nil when no spot tier is attached. The cluster's
	// lease map itself rides in Ledger.
	Spot *sim.SpotState `json:"spot,omitempty"`
}

// CheckpointDecision is a Decision on the checkpoint wire. JSON cannot
// encode infinities, and F is exactly -Inf for a bid rejected with no
// feasible plan, so that one value rides as a flag and Restore
// reinstates it.
type CheckpointDecision struct {
	schedule.Decision
	FNegInf bool `json:"f_neg_inf,omitempty"`
}

func wireDecision(d schedule.Decision) CheckpointDecision {
	w := CheckpointDecision{Decision: d}
	if math.IsInf(d.F, -1) {
		w.F = 0
		w.FNegInf = true
	}
	return w
}

func wireDecisions(decisions map[int]schedule.Decision) map[int]CheckpointDecision {
	out := make(map[int]CheckpointDecision, len(decisions))
	for id, d := range decisions {
		out[id] = wireDecision(d)
	}
	return out
}

func unwireDecisions(wire map[int]CheckpointDecision) map[int]schedule.Decision {
	out := make(map[int]schedule.Decision, len(wire))
	for id, w := range wire {
		d := w.Decision
		if w.FNegInf {
			d.F = math.Inf(-1)
		}
		out[id] = d
	}
	return out
}

// snapshot captures the broker's state; core-goroutine only.
func (b *Broker) snapshot() *Checkpoint {
	ck := &Checkpoint{
		Version:   checkpointVersion,
		RunLabel:  b.opts.RunLabel,
		Scheduler: b.sched.Name(),
		Slot:      b.slot,
		NextID:    b.nextID,
		Nodes:     b.cl.NumNodes(),
		Slots:     b.horizon.T,
		Ledger:    b.cl.Snapshot(),
		Result:    b.res,
		Decisions: wireDecisions(b.decisions),
		Canceled:  b.canceled,
		ProcIdx:   b.procIdx,
	}
	if dc, ok := b.sched.(DualCheckpointer); ok {
		ds := dc.SnapshotDuals()
		ck.Duals = &ds
	}
	if b.faults != nil {
		st := b.faults.State()
		ck.Failures = &st
	}
	if b.spot != nil {
		st := b.spot.State()
		ck.Spot = &st
	}
	return ck
}

// writeCheckpoint persists the broker state: the full JSON snapshot
// (atomically, tmp + rename, so a crash mid-write leaves the previous
// one intact), or — between full-snapshot boundaries when
// CheckpointFullEvery > 1 — one appended binary delta (delta.go).
// Drain and horizon end always force a full snapshot, so the plain
// checkpoint file is final-state-complete whenever the broker stops
// cleanly. Failures are recorded in Status rather than stopping the
// auction; core-goroutine only.
func (b *Broker) writeCheckpoint() {
	if b.opts.CheckpointPath == "" {
		return
	}
	if b.superseded.Load() {
		// A newer generation owns the checkpoint chain; a zombie must not
		// rename its stale snapshot over the successor's progress.
		return
	}
	if b.ckptW != nil {
		b.writeCheckpointAsync()
		return
	}
	if f := b.opts.CheckpointFault; f != nil {
		if err := f(b.slot); err != nil {
			b.ckptErr = err
			b.ckptFails++
			return
		}
	}
	full := b.opts.CheckpointFullEvery <= 1 || !b.wroteFull ||
		b.sinceFull >= b.opts.CheckpointFullEvery-1 ||
		b.draining || b.slot >= b.horizon.T
	var err error
	if full {
		err = b.writeFullCheckpoint()
	} else {
		err = b.appendDelta()
	}
	if err != nil {
		b.ckptErr = err
		b.ckptFails++
		return
	}
	if full {
		b.wroteFull = true
		b.sinceFull = 0
		b.dirty = b.dirty[:0]
	} else {
		b.sinceFull++
	}
	b.ckptErr = nil
	b.ckptFails = 0
	b.ckptSlot = b.slot
	// The persisted chain now covers every decision before this slot;
	// shrink the journal to what it does not cover.
	b.rotateWAL(b.slot)
}

// writeFullCheckpoint writes the JSON snapshot and re-keys (or, at the
// default full-every-write cadence, removes) the delta sidecar.
func (b *Broker) writeFullCheckpoint() error {
	data, err := json.Marshal(b.snapshot())
	if err != nil {
		return fmt.Errorf("service: marshal checkpoint: %w", err)
	}
	if err := writeCheckpointBytesGuarded(b.opts.CheckpointPath, data, b.persistGuard); err != nil {
		return err
	}
	if b.opts.CheckpointFullEvery > 1 {
		return b.resetDeltas(crc32.ChecksumIEEE(data))
	}
	b.closeDeltas()
	os.Remove(DeltaPath(b.opts.CheckpointPath))
	return nil
}

// WriteCheckpoint marshals ck and renames it into place.
func WriteCheckpoint(path string, ck *Checkpoint) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("service: marshal checkpoint: %w", err)
	}
	return writeCheckpointBytes(path, data)
}

func writeCheckpointBytes(path string, data []byte) error {
	return writeCheckpointBytesGuarded(path, data, nil)
}

// writeCheckpointBytesGuarded writes the snapshot tmp + rename; a
// non-nil guard runs at the last gate before the rename, so a broker
// superseded while this write was stalled refuses to publish its stale
// snapshot over the successor's.
func writeCheckpointBytesGuarded(path string, data []byte, guard func() error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("service: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("service: checkpoint write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("service: checkpoint close: %w", err)
	}
	if guard != nil {
		if err := guard(); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("service: checkpoint rename: %w", err)
	}
	return nil
}

// ReadCheckpoint loads a checkpoint file.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("service: read checkpoint: %w", err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("service: parse checkpoint %s: %w", path, err)
	}
	return &ck, nil
}

// Restore loads ck into the broker — duals into the scheduler, ledger
// into the cluster, accounting and decided bids into the broker — and
// positions the clock at ck.Slot. It must run before Start, on a broker
// whose cluster and scheduler were built fresh with the same
// configuration as the run being resumed.
func (b *Broker) Restore(ck *Checkpoint) error {
	if b.started {
		return ErrStarted
	}
	if ck.Version != checkpointVersion {
		return fmt.Errorf("service: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	if ck.Scheduler != b.sched.Name() {
		return fmt.Errorf("service: checkpoint from scheduler %q, broker runs %q", ck.Scheduler, b.sched.Name())
	}
	if ck.Nodes != b.cl.NumNodes() || ck.Slots != b.horizon.T {
		return fmt.Errorf("service: checkpoint shape %d nodes × %d slots, cluster is %d × %d",
			ck.Nodes, ck.Slots, b.cl.NumNodes(), b.horizon.T)
	}
	if ck.Slot < 0 || ck.Slot > b.horizon.T {
		return fmt.Errorf("service: checkpoint slot %d outside horizon [0,%d]", ck.Slot, b.horizon.T)
	}
	if ck.Duals != nil {
		dc, ok := b.sched.(DualCheckpointer)
		if !ok {
			return fmt.Errorf("service: checkpoint carries duals but scheduler %q cannot restore them", b.sched.Name())
		}
		if err := dc.RestoreDuals(*ck.Duals); err != nil {
			return err
		}
	}
	if err := b.cl.Restore(ck.Ledger); err != nil {
		return err
	}
	b.slot = ck.Slot
	b.nextID = ck.NextID
	b.canceled = ck.Canceled
	b.decisions = unwireDecisions(ck.Decisions)
	if ck.Result != nil {
		b.res = ck.Result
		if b.res.RejectReasons == nil {
			b.res.RejectReasons = map[schedule.RejectReason]int{}
		}
	}
	b.procIdx = ck.ProcIdx
	if b.faults != nil {
		if err := b.faults.RestoreState(ck.Failures, b.opts.Model); err != nil {
			return fmt.Errorf("service: %w", err)
		}
	} else if ck.Failures != nil && (ck.Failures.Next > 0 || len(ck.Failures.Records) > 0) {
		return fmt.Errorf("service: checkpoint carries failure state but broker has no fault plan")
	}
	if b.spot != nil {
		if err := b.spot.RestoreState(ck.Spot); err != nil {
			return fmt.Errorf("service: %w", err)
		}
	} else if ck.Spot != nil && (ck.Spot.Next > 0 || len(ck.Spot.Leases) > 0) {
		return fmt.Errorf("service: checkpoint carries spot state but broker has no spot provider")
	}
	b.ckptSlot = ck.Slot
	return nil
}
