package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func httpJSON(t *testing.T, srv *httptest.Server, method, path string, body any, wantStatus int, out any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: HTTP %d, want %d", method, path, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHTTPRoundTrip drives the full wire surface: health, status, a
// concurrent bid, the virtual clock, and decision lookup.
func TestHTTPRoundTrip(t *testing.T) {
	s := newStack(t, 12, 2, 2, 5)
	b := startBroker(t, s.brokerOptions())
	defer b.Kill()
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()

	httpJSON(t, srv, "GET", "/healthz", nil, http.StatusOK, nil)

	var st Status
	httpJSON(t, srv, "GET", "/v1/status", nil, http.StatusOK, &st)
	if st.Slot != 0 || st.Slots != 12 || !st.VirtualTime {
		t.Fatalf("status: %+v", st)
	}

	// The bid blocks until its slot closes, so it needs its own
	// goroutine while the main one steps the clock.
	decCh := make(chan DecisionResponse, 1)
	errCh := make(chan error, 1)
	go func() {
		body, _ := json.Marshal(BidRequest{Deadline: 10, Work: 5, MemGB: 2, Bid: 8})
		resp, err := srv.Client().Post(srv.URL+"/v1/bids", "application/json", bytes.NewReader(body))
		if err != nil {
			errCh <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errCh <- fmt.Errorf("POST /v1/bids: HTTP %d", resp.StatusCode)
			return
		}
		var d DecisionResponse
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			errCh <- err
			return
		}
		decCh <- d
	}()
	// Wait for intake, then close the slot.
	for {
		httpJSON(t, srv, "GET", "/v1/status", nil, http.StatusOK, &st)
		if st.Held == 1 {
			break
		}
	}
	var step map[string]int
	httpJSON(t, srv, "POST", "/v1/clock/step", map[string]int{"slots": 1}, http.StatusOK, &step)
	if step["slot"] != 1 {
		t.Fatalf("step: %v", step)
	}
	var dec DecisionResponse
	select {
	case dec = <-decCh:
	case err := <-errCh:
		t.Fatal(err)
	}

	var got DecisionResponse
	httpJSON(t, srv, "GET", fmt.Sprintf("/v1/decisions/%d", dec.TaskID), nil, http.StatusOK, &got)
	if got.Admitted != dec.Admitted {
		t.Fatalf("lookup %+v vs submit %+v", got, dec)
	}

	httpJSON(t, srv, "GET", "/v1/decisions/9999", nil, http.StatusNotFound, nil)
	httpJSON(t, srv, "GET", "/v1/decisions/notanumber", nil, http.StatusBadRequest, nil)
	httpJSON(t, srv, "POST", "/v1/bids", map[string]any{"unknown_field": 1}, http.StatusBadRequest, nil)

	// Past-slot and horizon-over refusals map to 409/410.
	past := 0
	httpJSON(t, srv, "POST", "/v1/bids",
		BidRequest{Arrival: &past, Deadline: 10, Work: 5, MemGB: 2, Bid: 8},
		http.StatusConflict, nil)
	httpJSON(t, srv, "POST", "/v1/clock/step", map[string]int{"slots": 50}, http.StatusOK, &step)
	if step["slot"] != 12 {
		t.Fatalf("clamped step: %v", step)
	}
	httpJSON(t, srv, "POST", "/v1/bids",
		BidRequest{Deadline: 10, Work: 5, MemGB: 2, Bid: 8},
		http.StatusGone, nil)
}

// TestHTTPErrorSurface: /healthz is aliased under the /v1 prefix for
// probes confined to it, and the mux's built-in text refusals (404 for
// unknown paths, 405 for wrong methods) are rewritten into the JSON
// error envelope every other endpoint speaks.
func TestHTTPErrorSurface(t *testing.T) {
	s := newStack(t, 12, 2, 2, 5)
	b := startBroker(t, s.brokerOptions())
	defer b.Kill()
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()

	var h1, h2 Health
	httpJSON(t, srv, "GET", "/healthz", nil, http.StatusOK, &h1)
	httpJSON(t, srv, "GET", "/v1/healthz", nil, http.StatusOK, &h2)
	if h1 != h2 {
		t.Fatalf("alias diverges: /healthz %+v vs /v1/healthz %+v", h1, h2)
	}

	for _, tc := range []struct {
		method, path string
		wantStatus   int
	}{
		{"GET", "/v1/nosuch", http.StatusNotFound},
		{"DELETE", "/v1/status", http.StatusMethodNotAllowed},
		{"GET", "/v1/bids", http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("%s %s: HTTP %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s %s: Content-Type %q, want application/json", tc.method, tc.path, ct)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s %s: error body is not JSON: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if body.Error == "" {
			t.Fatalf("%s %s: empty error field", tc.method, tc.path)
		}
	}
}

// TestHTTPRealClockStep: stepping a real-clock broker is a 409.
func TestHTTPRealClockStep(t *testing.T) {
	s := newStack(t, 12, 2, 2, 5)
	opts := s.brokerOptions()
	opts.VirtualClock = false
	opts.SlotDuration = 3600e9
	b := startBroker(t, opts)
	defer b.Kill()
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()
	httpJSON(t, srv, "POST", "/v1/clock/step", map[string]int{"slots": 1}, http.StatusConflict, nil)
}
