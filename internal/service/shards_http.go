package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Handler exposes the sharded broker over the same HTTP surface as a
// single Broker (see Broker.Handler) — clients cannot tell how many
// shards sit behind it, except that /v1/status returns the aggregated
// ShardsStatus (with per-shard detail under "per_shard") and sharded
// intake requires explicit non-negative bid IDs (400 otherwise: each
// shard assigns its own IDs, so auto-assignment would mint duplicates
// across the fleet).
//
// POST /v1/clock/step advances every shard together and republishes the
// dual-price quotes, so the next slot's bids route against fresh prices.
func (s *Shards) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/bids", s.handleBid)
	mux.HandleFunc("POST /v1/bids/batch", s.handleBidBatch)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/decisions/{id}", s.handleDecision)
	mux.HandleFunc("POST /v1/clock/step", s.handleStep)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// retryAfter mirrors Broker.retryAfter; all shards share a clock mode
// and slot duration, so shard 0 speaks for the fleet.
func (s *Shards) retryAfter() string { return s.brokers[0].retryAfter() }

func (s *Shards) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	status := http.StatusOK
	if h.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Shards) handleBid(w http.ResponseWriter, r *http.Request) {
	sc := scratchPool.Get().(*httpScratch)
	defer scratchPool.Put(sc)
	var err error
	if sc.body, err = readBody(r.Body, sc.body[:0]); err != nil {
		writeErr(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	if err := decodeBid(sc.body, &sc.req); err != nil {
		writeErr(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	t := sc.req.task()
	d, err := s.Submit(r.Context(), t)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			w.Header().Set("Retry-After", s.retryAfter())
		}
		writeErr(w, err)
		return
	}
	sc.out = appendDecisionJSON(sc.out[:0], d.TaskID, &d)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(sc.out)
}

// handleBidBatch mirrors Broker.handleBidBatch: the fleet partitions the
// batch by the dual-price placement rule, fans the per-shard slices out
// concurrently, and merges the responses positionally. Routing refusals
// (unknown model, missing ID) ride as per-bid errors inside a 200.
func (s *Shards) handleBidBatch(w http.ResponseWriter, r *http.Request) {
	sc := scratchPool.Get().(*httpScratch)
	reuse := true
	defer func() {
		if reuse {
			scratchPool.Put(sc)
		}
	}()
	var err error
	if sc.body, err = readBody(r.Body, sc.body[:0]); err != nil {
		writeErr(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	if err := decodeBids(sc.body, &sc.reqs); err != nil {
		writeErr(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	sc.tasks = sc.tasks[:0]
	for i := range sc.reqs {
		sc.tasks = append(sc.tasks, sc.reqs[i].task())
	}
	ctx := r.Context()
	if r.URL.Query().Get("ack") != "" {
		sc.verdicts = sc.verdicts[:0]
		for range sc.tasks {
			sc.verdicts = append(sc.verdicts, nil)
		}
		if _, err := s.SubmitBatchAck(ctx, sc.tasks, sc.verdicts); err != nil {
			reuse = !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
			if errors.Is(err, ErrQueueFull) {
				w.Header().Set("Retry-After", s.retryAfter())
			}
			writeErr(w, err)
			return
		}
		out := append(sc.out[:0], '[')
		for i := range sc.tasks {
			if i > 0 {
				out = append(out, ',')
			}
			out = append(out, `{"task_id":`...)
			out = strconv.AppendInt(out, int64(sc.tasks[i].ID), 10)
			if v := sc.verdicts[i]; v != nil {
				out = append(out, `,"error":`...)
				out = strconv.AppendQuote(out, v.Error())
			}
			out = append(out, '}')
		}
		sc.out = append(out, ']')
	} else {
		outs, err := s.SubmitBatch(ctx, sc.tasks)
		if err != nil {
			reuse = !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
			if errors.Is(err, ErrQueueFull) {
				w.Header().Set("Retry-After", s.retryAfter())
			}
			writeErr(w, err)
			return
		}
		out := append(sc.out[:0], '[')
		for i := range outs {
			if i > 0 {
				out = append(out, ',')
			}
			if outs[i].Err != nil {
				out = append(out, `{"task_id":`...)
				out = strconv.AppendInt(out, int64(sc.tasks[i].ID), 10)
				out = append(out, `,"error":`...)
				out = strconv.AppendQuote(out, outs[i].Err.Error())
				out = append(out, '}')
				continue
			}
			d := outs[i].Decision
			out = appendDecisionJSON(out, d.TaskID, &d)
		}
		sc.out = append(out, ']')
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(sc.out)
}

func (s *Shards) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Shards) handleDecision(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: bad task id %q", errBadRequest, r.PathValue("id")))
		return
	}
	d, _, ok, err := s.DecisionFor(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("task %d not decided", id)})
		return
	}
	writeJSON(w, http.StatusOK, decisionResponse(id, d))
}

func (s *Shards) handleStep(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Slots int `json:"slots"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	if req.Slots <= 0 {
		req.Slots = 1
	}
	slot, err := s.Step(req.Slots)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"slot": slot})
}
