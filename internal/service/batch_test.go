package service

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/pdftsp/pdftsp/internal/task"
)

// TestBatchConcurrentEquivalence is the batched twin of
// TestConcurrentEquivalence: the same workload fanned in as coalesced
// SubmitBatch calls from several goroutines must yield outcomes,
// accounting, duals, and ledger bit-identical to the sequential batch
// replay. Run it under -race.
func TestBatchConcurrentEquivalence(t *testing.T) {
	const slots, nodes, chunk = 24, 4, 37
	const rate = 52.0
	serve := newStack(t, slots, nodes, rate, 11)
	twin := newStack(t, slots, nodes, rate, 11)
	b := startBroker(t, serve.brokerOptions())

	type span struct{ lo, hi int }
	var spans []span
	for lo := 0; lo < len(serve.tasks); lo += chunk {
		hi := lo + chunk
		if hi > len(serve.tasks) {
			hi = len(serve.tasks)
		}
		spans = append(spans, span{lo, hi})
	}
	outcomes := make([][]Outcome, len(spans))
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for i, sp := range spans {
		wg.Add(1)
		go func(i int, sp span) {
			defer wg.Done()
			outcomes[i], errs[i] = b.SubmitBatch(context.Background(), serve.tasks[sp.lo:sp.hi])
		}(i, sp)
	}

	// SubmitBatch blocks until its bids' slots close, so the main
	// goroutine waits for every batch to land in the held queue before
	// advancing the clock past the arrivals.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := b.Status()
		if err != nil {
			t.Fatalf("Status: %v", err)
		}
		if st.Held == len(serve.tasks) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batches never fully held: %d of %d", st.Held, len(serve.tasks))
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := b.Step(slots); err != nil {
		t.Fatalf("Step: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}

	want := replay(t, twin)
	for i, sp := range spans {
		for j, out := range outcomes[i] {
			if out.Err != nil {
				t.Fatalf("task %d: %v", serve.tasks[sp.lo+j].ID, out.Err)
			}
			w := want.Decisions[sp.lo+j]
			if out.Decision.Admitted != w.Admitted || out.Decision.Payment != w.Payment || out.Decision.Reason != w.Reason {
				t.Fatalf("task %d: batch (admitted=%v payment=%v %q) vs replay (admitted=%v payment=%v %q)",
					serve.tasks[sp.lo+j].ID, out.Decision.Admitted, out.Decision.Payment, out.Decision.Reason,
					w.Admitted, w.Payment, w.Reason)
			}
		}
	}

	if err := b.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	res := b.Result()
	if res.Welfare != want.Welfare || res.Revenue != want.Revenue ||
		res.Admitted != want.Admitted || res.Rejected != want.Rejected {
		t.Fatalf("accounting: batch welfare=%v revenue=%v %d/%d, replay welfare=%v revenue=%v %d/%d",
			res.Welfare, res.Revenue, res.Admitted, res.Rejected,
			want.Welfare, want.Revenue, want.Admitted, want.Rejected)
	}
	if !serve.sched.SnapshotDuals().Equal(twin.sched.SnapshotDuals()) {
		t.Fatal("final dual prices diverge from the sequential replay")
	}
	if !reflect.DeepEqual(serve.cl.Snapshot(), twin.cl.Snapshot()) {
		t.Fatal("final cluster ledgers diverge from the sequential replay")
	}

	st, err := b.Status()
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.HeldHighWater != len(serve.tasks) {
		t.Fatalf("held high water %d, want %d (everything was held before the first step)", st.HeldHighWater, len(serve.tasks))
	}
	if st.Decided != len(serve.tasks) {
		t.Fatalf("decided %d, want %d", st.Decided, len(serve.tasks))
	}
	if st.ShedChannelFull != 0 || st.ShedHeldFull != 0 {
		t.Fatalf("unexpected shedding: channel=%d held=%d", st.ShedChannelFull, st.ShedHeldFull)
	}
}

// TestBatchAckOutlivesContext is the regression test for the
// fire-and-forget commit rule: SubmitBatchAck's bids are committed at
// the ack, so canceling the submitter's context afterwards (an HTTP
// handler's request context dies with the response) must not cancel
// the held bids.
func TestBatchAckOutlivesContext(t *testing.T) {
	const slots, nodes = 24, 4
	const rate = 6.0
	serve := newStack(t, slots, nodes, rate, 11)
	twin := newStack(t, slots, nodes, rate, 11)
	b := startBroker(t, serve.brokerOptions())

	ctx, cancel := context.WithCancel(context.Background())
	verdicts := make([]error, len(serve.tasks))
	held, err := b.SubmitBatchAck(ctx, serve.tasks, verdicts)
	cancel() // the "handler returned": every request-scoped ctx is now dead
	if err != nil {
		t.Fatalf("SubmitBatchAck: %v", err)
	}
	if held != len(serve.tasks) {
		t.Fatalf("held %d of %d", held, len(serve.tasks))
	}
	for i, v := range verdicts {
		if v != nil {
			t.Fatalf("task %d verdict: %v", serve.tasks[i].ID, v)
		}
	}
	if _, err := b.Step(slots); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if err := b.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	want := replay(t, twin)
	for i, tk := range serve.tasks {
		got, ok, err := b.DecisionFor(tk.ID)
		if err != nil || !ok {
			t.Fatalf("task %d undecided after canceled ctx (ok=%v err=%v)", tk.ID, ok, err)
		}
		w := want.Decisions[i]
		if got.Admitted != w.Admitted || got.Payment != w.Payment || got.Reason != w.Reason {
			t.Fatalf("task %d diverges from replay", tk.ID)
		}
	}
	res := b.Result()
	if res.Welfare != want.Welfare || res.Admitted != want.Admitted {
		t.Fatalf("accounting diverges: welfare=%v admitted=%d, want %v/%d",
			res.Welfare, res.Admitted, want.Welfare, want.Admitted)
	}
	st, _ := b.Status()
	if st.Canceled != 0 {
		t.Fatalf("%d bids canceled; the ack-form must not inherit the request ctx", st.Canceled)
	}
}

// TestBatchIntakeVerdicts covers per-bid refusals inside one batch: a
// refusal rides in that bid's verdict slot without failing the rest,
// and the shed tallies in Status account for it.
func TestBatchIntakeVerdicts(t *testing.T) {
	s := newStack(t, 12, 2, 2, 5)
	opts := s.brokerOptions()
	opts.QueueSize = 4
	b := startBroker(t, opts)
	defer b.Kill()

	bid := func(id int) task.Task {
		return task.Task{ID: id, Arrival: 3, Deadline: 10, Work: 5, MemGB: 2, Rank: 8, Batch: 8, Bid: 5}
	}
	batch := []task.Task{bid(0), bid(1), bid(0), bid(2), bid(3), bid(4), bid(5)}
	verdicts := make([]error, len(batch))
	held, err := b.SubmitBatchAck(context.Background(), batch, verdicts)
	if err != nil {
		t.Fatalf("SubmitBatchAck: %v", err)
	}
	if held != 4 {
		t.Fatalf("held %d, want 4 (queue capacity)", held)
	}
	for i := range []int{0, 1} {
		if verdicts[i] != nil {
			t.Fatalf("bid %d refused: %v", i, verdicts[i])
		}
	}
	if !errors.Is(verdicts[2], ErrDuplicateID) {
		t.Fatalf("duplicate in-batch ID: got %v", verdicts[2])
	}
	if verdicts[3] != nil || verdicts[4] != nil {
		t.Fatalf("bids 3/4 refused: %v, %v", verdicts[3], verdicts[4])
	}
	for _, i := range []int{5, 6} {
		if !errors.Is(verdicts[i], ErrHeldFull) {
			t.Fatalf("over-capacity bid %d: got %v, want ErrHeldFull", i, verdicts[i])
		}
	}
	st, err := b.Status()
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Held != 4 || st.HeldHighWater != 4 {
		t.Fatalf("held=%d highwater=%d, want 4/4", st.Held, st.HeldHighWater)
	}
	if st.ShedHeldFull != 2 {
		t.Fatalf("shed_held_full=%d, want 2", st.ShedHeldFull)
	}
}

// deltaStack drives a broker checkpointing with CheckpointFullEvery=4
// up to killAt, kills it, and returns the stack for state comparison.
// Tasks arriving at or after killAt are not submitted.
func deltaStack(t *testing.T, path string, fullEvery, slots, killAt int, seed int64) *testStack {
	t.Helper()
	s := newStack(t, slots, 4, 6.0, seed)
	opts := s.brokerOptions()
	opts.CheckpointPath = path
	opts.CheckpointFullEvery = fullEvery
	b := startBroker(t, opts)
	var early []task.Task
	for _, tk := range s.tasks {
		if tk.Arrival < killAt {
			early = append(early, tk)
		}
	}
	verdicts := make([]error, len(early))
	if _, err := b.SubmitBatchAck(context.Background(), early, verdicts); err != nil {
		t.Fatalf("SubmitBatchAck: %v", err)
	}
	for i, v := range verdicts {
		if v != nil {
			t.Fatalf("bid %d: %v", early[i].ID, v)
		}
	}
	if _, err := b.Step(killAt); err != nil {
		t.Fatalf("Step: %v", err)
	}
	b.Kill()
	return s
}

// normalizeCheckpoint strips the wall-clock offer latencies (they differ
// between otherwise identical runs) so checkpoints compare by auction
// state alone.
func normalizeCheckpoint(ck *Checkpoint) {
	if ck.Result != nil {
		ck.Result.OfferLatency = nil
	}
}

// TestLoadCheckpointDeltaEquivalence runs the same workload through a
// per-slot-full broker and a binary-delta broker (full snapshot every 4
// slots) and asserts LoadCheckpoint reconstructs, from full + deltas,
// the exact state the full-snapshot twin persisted — and that the old
// ReadCheckpoint path still reads the delta run's base snapshot.
func TestLoadCheckpointDeltaEquivalence(t *testing.T) {
	const slots, killAt = 24, 11 // 11 is mid-interval: full at 9, deltas at 10..11
	dir := t.TempDir()
	fullPath := filepath.Join(dir, "full.ckpt")
	deltaPath := filepath.Join(dir, "delta.ckpt")
	deltaStack(t, fullPath, 1, slots, killAt, 23)
	s := deltaStack(t, deltaPath, 4, slots, killAt, 23)

	if _, err := os.Stat(DeltaPath(deltaPath)); err != nil {
		t.Fatalf("no delta sidecar written: %v", err)
	}
	want, err := ReadCheckpoint(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slot != killAt || want.Slot != killAt {
		t.Fatalf("checkpoint slots %d/%d, want %d", got.Slot, want.Slot, killAt)
	}
	if len(got.Result.OfferLatency) != len(want.Result.OfferLatency) {
		t.Fatalf("offer latency count %d vs %d", len(got.Result.OfferLatency), len(want.Result.OfferLatency))
	}
	normalizeCheckpoint(got)
	normalizeCheckpoint(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delta-reconstructed checkpoint diverges from the full snapshot\ngot  %+v\nwant %+v", got, want)
	}

	// The base snapshot alone (what a pre-delta reader sees) must still
	// parse and restore: ReadCheckpoint ignores the sidecar by design.
	base, err := ReadCheckpoint(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	if base.Slot != 9 {
		t.Fatalf("base snapshot at slot %d, want 9 (last full boundary)", base.Slot)
	}
	restored := newStack(t, slots, 4, 6.0, 23)
	nb, err := New(restored.brokerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := nb.Restore(got); err != nil {
		t.Fatalf("Restore of delta-reconstructed checkpoint: %v", err)
	}
	if !restored.sched.SnapshotDuals().Equal(s.sched.SnapshotDuals()) {
		t.Fatal("restored duals differ from the killed delta broker's")
	}
	if !reflect.DeepEqual(restored.cl.Snapshot(), s.cl.Snapshot()) {
		t.Fatal("restored ledger differs from the killed delta broker's")
	}
}

// TestLoadCheckpointCorruptTail corrupts and truncates the delta
// sidecar and asserts LoadCheckpoint falls back to the longest valid
// prefix — never an error, never a torn state.
func TestLoadCheckpointCorruptTail(t *testing.T) {
	const slots, killAt = 24, 11
	dir := t.TempDir()
	path := filepath.Join(dir, "broker.ckpt")
	deltaStack(t, path, 4, slots, killAt, 23)

	side := DeltaPath(path)
	pristine, err := os.ReadFile(side)
	if err != nil {
		t.Fatal(err)
	}
	reset := func(b []byte) {
		if err := os.WriteFile(side, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	load := func(label string) *Checkpoint {
		ck, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("%s: LoadCheckpoint: %v", label, err)
		}
		return ck
	}

	if ck := load("pristine"); ck.Slot != killAt {
		t.Fatalf("pristine: slot %d, want %d", ck.Slot, killAt)
	}

	// Flip a byte in the last record's payload: its CRC fails, the
	// prefix before it survives.
	flipped := append([]byte(nil), pristine...)
	flipped[len(flipped)-1] ^= 0xff
	reset(flipped)
	if ck := load("flipped tail"); ck.Slot != killAt-1 {
		t.Fatalf("flipped tail: slot %d, want %d", ck.Slot, killAt-1)
	}

	// Tear the last record in half (a crash mid-append).
	reset(pristine[:len(pristine)-20])
	if ck := load("torn tail"); ck.Slot != killAt-1 {
		t.Fatalf("torn tail: slot %d, want %d", ck.Slot, killAt-1)
	}

	// Destroy the sidecar header: the full snapshot stands alone.
	garbage := append([]byte(nil), pristine...)
	garbage[0] ^= 0xff
	reset(garbage)
	if ck := load("bad magic"); ck.Slot != 9 {
		t.Fatalf("bad magic: slot %d, want 9 (full snapshot alone)", ck.Slot)
	}

	// No sidecar at all: LoadCheckpoint degenerates to ReadCheckpoint.
	if err := os.Remove(side); err != nil {
		t.Fatal(err)
	}
	ck := load("no sidecar")
	want, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Result.OfferLatency) != len(want.Result.OfferLatency) {
		t.Fatalf("offer latency count %d vs %d", len(ck.Result.OfferLatency), len(want.Result.OfferLatency))
	}
	normalizeCheckpoint(ck)
	normalizeCheckpoint(want)
	if !reflect.DeepEqual(ck, want) {
		t.Fatal("sidecar-less LoadCheckpoint differs from ReadCheckpoint")
	}
}

// TestLoadCheckpointStaleSidecar keys a sidecar to a different snapshot
// and asserts it is ignored rather than misapplied.
func TestLoadCheckpointStaleSidecar(t *testing.T) {
	const slots = 24
	dir := t.TempDir()
	path := filepath.Join(dir, "broker.ckpt")
	deltaStack(t, path, 4, slots, 11, 23)
	side, err := os.ReadFile(DeltaPath(path))
	if err != nil {
		t.Fatal(err)
	}

	// Re-run two slots further: the full snapshot boundary re-keys the
	// chain, so the OLD sidecar must not apply to the NEW snapshot.
	deltaStack(t, path, 4, slots, 13, 23)
	if err := os.WriteFile(DeltaPath(path), side, 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Slot != base.Slot {
		t.Fatalf("stale sidecar applied: slot %d, base %d", ck.Slot, base.Slot)
	}
}

// TestBatchHTTPUnknownFieldTolerated pins the documented strictness
// trade-off of the pooled batch decoder: the single-bid endpoint rejects
// unknown fields, the batch endpoint tolerates them.
func TestBatchHTTPUnknownFieldTolerated(t *testing.T) {
	var reqs []BidRequest
	payload := []byte(`[{"id":1,"arrival":0,"deadline":5,"work":3,"mem_gb":2,"bid":4,"bogus":true}]`)
	if err := DecodeBids(payload, &reqs); err != nil {
		t.Fatalf("batch decode rejected unknown field: %v", err)
	}
	if len(reqs) != 1 || reqs[0].Task().ID != 1 {
		t.Fatalf("batch decode mangled the request: %+v", reqs)
	}

	// Reuse must not leak fields between decodes: a second payload that
	// omits deadline/work must not inherit the first one's values.
	if err := DecodeBids([]byte(`[{"id":2,"arrival":0,"bid":1}]`), &reqs); err != nil {
		t.Fatal(err)
	}
	tk := reqs[0].Task()
	if tk.Deadline != 0 || tk.Work != 0 {
		t.Fatalf("stale fields leaked through the decode pool: %+v", tk)
	}
	if !bytes.Contains(payload, []byte("bogus")) {
		t.Fatal("test payload lost its unknown field")
	}
}
