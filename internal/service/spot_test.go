package service

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/pdftsp/pdftsp/internal/sim"
	"github.com/pdftsp/pdftsp/internal/spot"
	"github.com/pdftsp/pdftsp/internal/task"
)

// spotProviderFor builds a fresh provider over the stack's last node —
// broker and sim twin each need their own (a provider binds to exactly
// one cluster), built from the same seeded trace so the market is shared.
func spotProviderFor(t *testing.T, s *testStack, seed int64, reclaimProb float64) *spot.Provider {
	t.Helper()
	elastic := s.cl.NumNodes() - 1
	tr, err := spot.GenerateTrace(spot.TraceConfig{
		Seed:        seed,
		Slots:       s.cl.Horizon().T,
		Nodes:       []int{elastic},
		BasePrice:   spot.ReferencePrice(s.cl) * 0.3,
		ReclaimProb: reclaimProb,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := spot.New(spot.Options{Trace: tr, Nodes: []int{elastic}, Budget: 1e6, LeaseLen: 6})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBrokerSpotEquivalence: a broker renting elastic capacity from a
// seeded spot market — including revocations mid-plan — stays
// bit-identical to sim.Run with the same provider configuration.
func TestBrokerSpotEquivalence(t *testing.T) {
	const slots, nodes, workers = 24, 3, 6
	const rate = 8.0
	const spotSeed, reclaim = 5, 0.25
	failures := []sim.Failure{{Node: 0, From: 8, To: 14}}

	serve := newFaultStack(t, slots, nodes, rate, 31)
	twin := newFaultStack(t, slots, nodes, rate, 31)

	opts := serve.brokerOptions()
	opts.Failures = failures
	opts.Spot = spotProviderFor(t, serve, spotSeed, reclaim)
	b := startBroker(t, opts)
	chans := submitAll(t, b, serve.tasks, workers)
	if _, err := b.Step(slots); err != nil {
		t.Fatal(err)
	}
	for i := range serve.tasks {
		if out := <-chans[i]; out.Err != nil {
			t.Fatalf("task %d: %v", serve.tasks[i].ID, out.Err)
		}
	}
	if err := b.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	twinProv := spotProviderFor(t, twin, spotSeed, reclaim)
	want, err := sim.Run(twin.cl, twin.sched, twin.tasks, sim.Config{
		Model: twin.model, Market: twin.mkt,
		Failures: failures, Spot: twinProv,
		CollectDecisions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want.SpotLeases == 0 || want.SpotLeasedSlots == 0 {
		t.Fatalf("spot tier never engaged; the test is vacuous: %+v", want)
	}
	if want.SpotRevocations == 0 {
		t.Fatalf("no revocations at reclaim prob %v; the test is vacuous", reclaim)
	}

	res := b.Result()
	if res.Welfare != want.Welfare || res.Revenue != want.Revenue ||
		res.Admitted != want.Admitted || res.Rejected != want.Rejected ||
		res.SpotSpend != want.SpotSpend || res.SpotLeases != want.SpotLeases ||
		res.SpotLeasedSlots != want.SpotLeasedSlots ||
		res.SpotRevocations != want.SpotRevocations ||
		res.RecoveredTasks != want.RecoveredTasks ||
		res.FailedTasks != want.FailedTasks ||
		res.RefundedValue != want.RefundedValue {
		t.Fatalf("accounting diverged:\nbroker %+v\nsim    %+v", res, want)
	}
	for i, tk := range serve.tasks {
		got, ok, err := b.DecisionFor(tk.ID)
		if err != nil || !ok {
			t.Fatalf("task %d: no decision (ok=%v err=%v)", tk.ID, ok, err)
		}
		w := want.Decisions[i]
		if got.Admitted != w.Admitted || got.Payment != w.Payment || got.Reason != w.Reason {
			t.Fatalf("task %d: broker (%v %v %q) vs sim (%v %v %q)",
				tk.ID, got.Admitted, got.Payment, got.Reason, w.Admitted, w.Payment, w.Reason)
		}
	}
	if !serve.sched.SnapshotDuals().Equal(twin.sched.SnapshotDuals()) {
		t.Fatal("final duals diverge from sim.Run")
	}
	if !reflect.DeepEqual(serve.cl.Snapshot(), twin.cl.Snapshot()) {
		t.Fatal("final ledgers diverge from sim.Run")
	}
	if !reflect.DeepEqual(opts.Spot.State(), twinProv.State()) {
		t.Fatal("provider states diverge from sim.Run")
	}
}

// TestCheckpointKillRestoreMidLease is the regression test for the
// incremental-delta codec: with CheckpointFullEvery > 1 the kill lands
// on a delta chain, so the record must carry the spot accounting
// scalars, the lease plane, and the provider cursor. (A codec that
// restores the provider from the older full snapshot but welfare from
// the newest delta double-charges the rent on resume.)
func TestCheckpointKillRestoreMidLease(t *testing.T) {
	const slots, nodes, killAt = 24, 3, 11
	const rate = 6.0
	const spotSeed, reclaim = 5, 0.25
	failures := []sim.Failure{{Node: 0, From: 8, To: 16}}
	path := filepath.Join(t.TempDir(), "lease.ckpt")

	serve := newFaultStack(t, slots, nodes, rate, 37)
	twin := newFaultStack(t, slots, nodes, rate, 37)

	var early, late []task.Task
	for _, tk := range serve.tasks {
		if tk.Arrival < killAt {
			early = append(early, tk)
		} else {
			late = append(late, tk)
		}
	}
	if len(early) == 0 || len(late) == 0 {
		t.Fatalf("degenerate split: %d early, %d late", len(early), len(late))
	}

	optsA := serve.brokerOptions()
	optsA.CheckpointPath = path
	optsA.CheckpointEvery = 1
	optsA.CheckpointFullEvery = 4 // force the kill onto a delta record
	optsA.Failures = failures
	optsA.Spot = spotProviderFor(t, serve, spotSeed, reclaim)
	a := startBroker(t, optsA)
	earlyChans := submitAll(t, a, early, 4)
	if _, err := a.Step(killAt); err != nil {
		t.Fatal(err)
	}
	for i := range early {
		if out := <-earlyChans[i]; out.Err != nil {
			t.Fatalf("early task %d: %v", early[i].ID, out.Err)
		}
	}
	if st, err := a.Status(); err != nil || st.SpotLeasedSlots == 0 {
		t.Fatalf("no lease live before the kill (st=%+v err=%v); the test is vacuous", st, err)
	}
	a.Kill()

	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Slot != killAt {
		t.Fatalf("checkpoint at slot %d, want %d", ck.Slot, killAt)
	}
	if ck.Spot == nil || len(ck.Spot.Leases) == 0 && ck.Spot.Next == 0 {
		t.Fatalf("checkpoint carries no spot state: %+v", ck.Spot)
	}

	restored := newFaultStack(t, slots, nodes, rate, 37)
	optsB := restored.brokerOptions()
	optsB.CheckpointPath = path
	optsB.CheckpointEvery = 1
	optsB.CheckpointFullEvery = 4
	optsB.Failures = failures
	optsB.Spot = spotProviderFor(t, restored, spotSeed, reclaim)
	b, err := New(optsB)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(ck); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	lateChans := submitAll(t, b, late, 4)
	if _, err := b.Step(slots - killAt); err != nil {
		t.Fatal(err)
	}
	for i := range late {
		if out := <-lateChans[i]; out.Err != nil {
			t.Fatalf("late task %d: %v", late[i].ID, out.Err)
		}
	}
	if err := b.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	twinProv := spotProviderFor(t, twin, spotSeed, reclaim)
	want, err := sim.Run(twin.cl, twin.sched, twin.tasks, sim.Config{
		Model: twin.model, Market: twin.mkt,
		Failures: failures, Spot: twinProv,
		CollectDecisions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := b.Result()
	if res.Welfare != want.Welfare || res.Revenue != want.Revenue ||
		res.SpotSpend != want.SpotSpend || res.SpotLeases != want.SpotLeases ||
		res.SpotLeasedSlots != want.SpotLeasedSlots ||
		res.SpotRevocations != want.SpotRevocations ||
		res.RefundedValue != want.RefundedValue {
		t.Fatalf("resumed run diverged:\nbroker %+v\nsim    %+v", res, want)
	}
	if !restored.sched.SnapshotDuals().Equal(twin.sched.SnapshotDuals()) {
		t.Fatal("final duals after mid-lease restore diverge from the uninterrupted replay")
	}
	if !reflect.DeepEqual(restored.cl.Snapshot(), twin.cl.Snapshot()) {
		t.Fatal("final ledger after mid-lease restore diverges from the uninterrupted replay")
	}
	if !reflect.DeepEqual(optsB.Spot.State(), twinProv.State()) {
		t.Fatal("provider state after mid-lease restore diverges from the uninterrupted replay")
	}
	for i, tk := range serve.tasks {
		got, ok, err := b.DecisionFor(tk.ID)
		if err != nil || !ok {
			t.Fatalf("task %d: decision lost across restore (ok=%v err=%v)", tk.ID, ok, err)
		}
		w := want.Decisions[i]
		if got.Admitted != w.Admitted || got.Reason != w.Reason {
			t.Fatalf("task %d: resumed (admitted=%v %q) vs replay (admitted=%v %q)",
				tk.ID, got.Admitted, got.Reason, w.Admitted, w.Reason)
		}
	}
}
