package service

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/pdftsp/pdftsp/internal/faults"
	"github.com/pdftsp/pdftsp/internal/sim"
)

// specCompare diffs a finished speculative broker against its sequential
// sim.Run ground truth: every decision, the run accounting, the final
// dual prices, and the cluster ledger must be bit-identical.
func specCompare(t *testing.T, b *Broker, serve, twin *testStack, want *sim.Result) {
	t.Helper()
	for i, tk := range serve.tasks {
		got, ok, err := b.DecisionFor(tk.ID)
		if err != nil || !ok {
			t.Fatalf("task %d: no decision (ok=%v err=%v)", tk.ID, ok, err)
		}
		w := want.Decisions[i]
		if msg := sim.DiffDecisions(&got, &w, false); msg != "" {
			t.Fatalf("task %d: speculative broker vs sequential sim: %s", tk.ID, msg)
		}
	}
	if msg := sim.DiffResults(b.Result(), want); msg != "" {
		t.Fatalf("accounting diverged (%s)\nbroker %+v\nsim    %+v", msg, b.Result(), want)
	}
	if !serve.sched.SnapshotDuals().Equal(twin.sched.SnapshotDuals()) {
		t.Fatal("final dual prices diverge from the sequential replay")
	}
	if !reflect.DeepEqual(serve.cl.Snapshot(), twin.cl.Snapshot()) {
		t.Fatal("final cluster ledgers diverge from the sequential replay")
	}
}

// TestSpeculativeSlotCloseEquivalence is the tentpole's acceptance test:
// a broker closing slots through the speculative parallel round must be
// bit-identical — decisions, duals, ledger, welfare — to the sequential
// path, which itself equals sim.Run. The workloads are adversarial by
// construction: many bids per slot contending for the same few nodes, so
// nearly every tentative offer prices against duals an earlier commit
// just moved, maximizing validation conflicts. Run under -race: the
// worker fan-out and the commit loop share the scheduler's frozen state.
func TestSpeculativeSlotCloseEquivalence(t *testing.T) {
	t.Run("adversarial-contention", func(t *testing.T) {
		// 2 nodes at rate 30 → slot batches of ~30 bids fighting over the
		// same capacity: dual updates and capacity rejects on every close.
		const slots, nodes, workers = 16, 2, 8
		const rate = 30.0
		serve := newStack(t, slots, nodes, rate, 5)
		twin := newStack(t, slots, nodes, rate, 5)

		opts := serve.brokerOptions()
		opts.SpecWorkers = 4
		b := startBroker(t, opts)
		chans := submitAll(t, b, serve.tasks, workers)
		if _, err := b.Step(slots); err != nil {
			t.Fatal(err)
		}
		for i := range serve.tasks {
			if out := <-chans[i]; out.Err != nil {
				t.Fatalf("task %d: %v", serve.tasks[i].ID, out.Err)
			}
		}
		if err := b.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}

		want := replay(t, twin)
		specCompare(t, b, serve, twin, want)

		hits, misses := b.spec.Stats()
		if hits+misses == 0 {
			t.Fatal("speculative round never ran; the test is vacuous")
		}
		if misses == 0 {
			t.Fatal("adversarial workload produced zero validation conflicts; contention is not being exercised")
		}
		t.Logf("speculation: %d hits, %d misses (%.1f%% hit rate)",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	})

	// The chaos seeds route outages, vendor fault windows, and refund
	// flips through the speculative round — the paths where a stale
	// tentative decision would corrupt refunds or the fault tracker.
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("chaos-seed-%d", seed), func(t *testing.T) {
			const slots, nodes, workers = 24, 3, 6
			const rate = 8.0
			plan := faults.Generate(seed, nodes, slots, 4)
			var failures []sim.Failure
			for _, o := range plan.Outages {
				failures = append(failures, sim.Failure{Node: o.Node, From: o.From, To: o.To})
			}

			serve := newFaultStack(t, slots, nodes, rate, seed)
			twin := newFaultStack(t, slots, nodes, rate, seed)

			opts := serve.brokerOptions()
			opts.SpecWorkers = 4
			opts.Failures = failures
			opts.Quotes = faultQuotes(serve, plan.Vendor)
			b := startBroker(t, opts)
			chans := submitAll(t, b, serve.tasks, workers)
			if _, err := b.Step(slots); err != nil {
				t.Fatal(err)
			}
			for i := range serve.tasks {
				if out := <-chans[i]; out.Err != nil {
					t.Fatalf("task %d: %v", serve.tasks[i].ID, out.Err)
				}
			}
			if err := b.Drain(context.Background()); err != nil {
				t.Fatal(err)
			}

			want, err := sim.Run(twin.cl, twin.sched, twin.tasks, sim.Config{
				Model: twin.model, Market: twin.mkt,
				Failures: failures, Quotes: faultQuotes(twin, plan.Vendor),
				CollectDecisions: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			specCompare(t, b, serve, twin, want)
		})
	}

	t.Run("two-shard-fleet", func(t *testing.T) {
		// A speculative 2-shard fleet against its sequential twin fleet:
		// the router must feed both identically, and each shard's
		// speculative round must commit what its sequential twin decides.
		const slots, shards, nodesPerShard = 24, 2, 2
		tasks := shardWorkload(t, slots, 10, 17)

		mk := func(specWorkers int) (*Shards, []*testStack) {
			stacks := make([]*testStack, shards)
			specs := make([]ShardSpec, shards)
			for i := range stacks {
				stacks[i] = newShardStack(t, slots, nodesPerShard, 17+int64(i), tasks)
				o := stacks[i].brokerOptions()
				o.SpecWorkers = specWorkers
				specs[i] = ShardSpec{Key: filepath.Join("gpt2-small", string(rune('0'+i))), Options: o}
			}
			s, err := NewShards(ShardsOptions{}, specs...)
			if err != nil {
				t.Fatalf("NewShards: %v", err)
			}
			if err := s.Start(); err != nil {
				t.Fatalf("Start: %v", err)
			}
			driveShards(t, s, slots, tasks)
			if err := s.Drain(context.Background()); err != nil {
				t.Fatalf("Drain: %v", err)
			}
			return s, stacks
		}
		spec, specStacks := mk(4)
		seq, seqStacks := mk(0)

		for _, tk := range tasks {
			got, gi, ok := shardDecision(t, spec, tk.ID)
			if !ok {
				t.Fatalf("speculative fleet lost decision %d", tk.ID)
			}
			want, wi, ok := shardDecision(t, seq, tk.ID)
			if !ok {
				t.Fatalf("sequential fleet lost decision %d", tk.ID)
			}
			if gi != wi {
				t.Fatalf("task %d routed to shard %d speculative, %d sequential", tk.ID, gi, wi)
			}
			if msg := sim.DiffDecisions(&got, &want, false); msg != "" {
				t.Fatalf("task %d (shard %d): %s", tk.ID, gi, msg)
			}
		}
		for i := 0; i < shards; i++ {
			if msg := sim.DiffResults(spec.Results()[i], seq.Results()[i]); msg != "" {
				t.Fatalf("shard %d accounting diverged (%s)", i, msg)
			}
			if !specStacks[i].sched.SnapshotDuals().Equal(seqStacks[i].sched.SnapshotDuals()) {
				t.Fatalf("shard %d duals diverged between speculative and sequential fleets", i)
			}
			if !reflect.DeepEqual(specStacks[i].cl.Snapshot(), seqStacks[i].cl.Snapshot()) {
				t.Fatalf("shard %d ledgers diverged between speculative and sequential fleets", i)
			}
		}
		st, err := spec.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.SpecHits+st.SpecMisses == 0 {
			t.Fatal("fleet status reports no speculative activity")
		}
	})
}

// TestAsyncCheckpointBackpressure covers the async pipeline's two
// contracts: a slot may not close while two writes are still in flight
// (the writer-stall case), and harvested write failures flip the broker
// into the same degraded mode the synchronous path enters — then clear
// with a forced full snapshot once writes land again.
func TestAsyncCheckpointBackpressure(t *testing.T) {
	t.Run("writer-stall-blocks-slot-close", func(t *testing.T) {
		const slots, nodes = 24, 2
		serve := newStack(t, slots, nodes, 1, 3)
		opts := serve.brokerOptions()
		opts.CheckpointPath = filepath.Join(t.TempDir(), "b.ckpt")
		opts.CheckpointEvery = 1
		opts.AsyncCheckpoint = true

		b, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		// Gate every write: the writer consumes one token per checkpoint,
		// so with zero tokens outstanding writes park inside the writer.
		gate := make(chan struct{}, slots+1)
		b.ckptStall = func(int, bool) { <-gate }
		if err := b.Start(); err != nil {
			t.Fatal(err)
		}

		// Slots 1 and 2 close freely: their writes stage without blocking
		// (inflight goes 1 then 2). Slot 3's close must park in the
		// backpressure loop until the slot-1 write lands.
		stepped := make(chan error, 1)
		go func() {
			_, err := b.Step(3)
			stepped <- err
		}()
		select {
		case err := <-stepped:
			t.Fatalf("Step(3) returned (%v) with both staged writes stalled; backpressure is not engaging", err)
		case <-time.After(200 * time.Millisecond):
		}

		gate <- struct{}{} // land the slot-1 write; slot 3 may now close
		select {
		case err := <-stepped:
			if err != nil {
				t.Fatalf("Step(3): %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Step(3) still blocked after releasing a write")
		}

		// Open the gate fully; the drain flushes the pipeline, so the
		// final checkpoint must be on disk and current.
		for i := 0; i < slots; i++ {
			gate <- struct{}{}
		}
		if _, err := b.Step(slots - 3); err != nil {
			t.Fatal(err)
		}
		if err := b.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		ck, err := ReadCheckpoint(opts.CheckpointPath)
		if err != nil {
			t.Fatal(err)
		}
		if ck.Slot != slots {
			t.Fatalf("final checkpoint at slot %d, want %d", ck.Slot, slots)
		}
	})

	t.Run("degraded-flip-and-recovery", func(t *testing.T) {
		const slots, nodes = 24, 2
		serve := newStack(t, slots, nodes, 1, 9)
		// The checkpoint lives under a directory that does not exist yet:
		// every async write fails at the tmp-file stage until the test
		// creates it, then the forced full snapshot restates everything.
		dir := t.TempDir()
		sub := filepath.Join(dir, "not-yet")
		opts := serve.brokerOptions()
		opts.CheckpointPath = filepath.Join(sub, "b.ckpt")
		opts.CheckpointEvery = 1
		opts.CheckpointFullEvery = 4
		opts.AsyncCheckpoint = true

		b := startBroker(t, opts)
		// Each close stages a write whose failure is harvested a slot
		// later; after well past DegradeAfter (3) consecutive failures the
		// broker must report degraded — while still closing slots.
		if _, err := b.Step(8); err != nil {
			t.Fatal(err)
		}
		waitStatus := func(pred func(Status) bool, what string) Status {
			t.Helper()
			deadline := time.Now().Add(5 * time.Second)
			for {
				st, err := b.Status()
				if err != nil {
					t.Fatal(err)
				}
				if pred(st) {
					return st
				}
				if time.Now().After(deadline) {
					t.Fatalf("status never became %s: %+v", what, st)
				}
				// Completions harvest at the next close; keep stepping.
				if _, err := b.Step(1); err != nil {
					t.Fatal(err)
				}
			}
		}
		st := waitStatus(func(st Status) bool { return st.Degraded }, "degraded")
		if st.CheckpointFailures < 3 { // DegradeAfter's default
			t.Fatalf("degraded with only %d recorded failures", st.CheckpointFailures)
		}
		if st.CheckpointError == "" {
			t.Fatalf("degraded without a checkpoint error: %+v", st)
		}

		// Restore writability: the next harvest clears the error, and the
		// forced full snapshot (wroteFull was dropped on failure) re-keys
		// the chain — the file appears even though the full-every cadence
		// alone would have scheduled a delta.
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		st = waitStatus(func(st Status) bool { return !st.Degraded && st.CheckpointFailures == 0 }, "healthy")
		if st.CheckpointSlot < 0 {
			t.Fatalf("recovered but no checkpoint slot recorded: %+v", st)
		}
		if _, err := os.Stat(opts.CheckpointPath); err != nil {
			t.Fatalf("recovered without a full snapshot on disk: %v", err)
		}
		atSlot := st.Slot
		if err := b.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Drain forces one last full write at whatever slot the clock
		// reached; the flushed pipeline must leave it current on disk.
		ck, err := ReadCheckpoint(opts.CheckpointPath)
		if err != nil {
			t.Fatal(err)
		}
		if ck.Slot < atSlot {
			t.Fatalf("final checkpoint at slot %d, stale vs slot %d at drain", ck.Slot, atSlot)
		}
	})
}
