package service

import (
	"context"
	"net/http"

	"github.com/pdftsp/pdftsp/internal/schedule"
	"github.com/pdftsp/pdftsp/internal/task"
)

// Auctioneer is the serving API — the one surface a monolithic Broker
// and a sharded fleet (Shards) both implement. Everything above the
// service layer (cmd/pdftspd's serve/chaos/verify loops, the load
// generator, the spot tier's operators) programs against this interface
// and never branches on the fleet shape: a fleet of one and a fleet of
// many submit, step, drain, checkpoint, and report identically.
//
// The contract follows Broker's semantics exactly; Shards adds routing
// (a bid lands on the shard with the best dual-price surplus) but keeps
// every per-shard guarantee, including bit-identity of each shard with
// a sequential sim.Run of the subsequence routed to it.
type Auctioneer interface {
	// Start launches the core goroutine(s); Drain stops gracefully with a
	// final checkpoint, Kill crash-stops (the restore tests' SIGKILL).
	Start() error
	Drain(ctx context.Context) error
	Kill()

	// Submit hands over one bid and blocks for its slot's decision.
	// SubmitBatch coalesces many bids into one intake message;
	// SubmitBatchAck is its fire-and-forget half (intake verdicts only).
	Submit(ctx context.Context, t task.Task) (schedule.Decision, error)
	SubmitBatch(ctx context.Context, tasks []task.Task) ([]Outcome, error)
	SubmitBatchAck(ctx context.Context, tasks []task.Task, verdicts []error) (int, error)

	// Step closes n slots of a virtual-clock fleet; Slot is the current
	// (bid-accepting) slot.
	Step(n int) (int, error)
	Slot() (int, error)

	// DecisionFor returns a decided bid's irrevocable outcome;
	// PendingFor reports a bid that is acked but awaiting its slot's
	// round — the API's "pending, not lost" answer.
	DecisionFor(id int) (schedule.Decision, bool, error)
	PendingFor(id int) (bool, error)

	// Status is the fleet-level operational summary (a sharded fleet
	// aggregates its shards); Health is the /healthz verdict.
	Status() (Status, error)
	Health() Health

	// Brokers exposes the fleet members — length 1 for a monolithic
	// broker — for callers that need per-shard state (chaos harnesses,
	// per-shard sim.Run verify twins, post-drain Result inspection).
	Brokers() []*Broker

	// Handler serves the /v1 HTTP API (http.go); both implementations
	// share one handler over this interface.
	Handler() http.Handler

	// retryAfter is the Retry-After hint for 429 responses and
	// statusPayload the /v1/status body (a Broker serves Status, a fleet
	// the richer ShardsStatus) — unexported so the shared HTTP handler
	// stays an implementation detail of this package.
	retryAfter() string
	statusPayload() (any, error)
}

var (
	_ Auctioneer = (*Broker)(nil)
	_ Auctioneer = (*Shards)(nil)
	_ Auctioneer = (*Supervisor)(nil)
)

// statusPayload serves the monolithic broker's Status on /v1/status.
func (b *Broker) statusPayload() (any, error) { return b.Status() }
