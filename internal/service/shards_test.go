package service

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/pdftsp/pdftsp/internal/cluster"
	"github.com/pdftsp/pdftsp/internal/core"
	"github.com/pdftsp/pdftsp/internal/gpu"
	"github.com/pdftsp/pdftsp/internal/lora"
	"github.com/pdftsp/pdftsp/internal/schedule"
	"github.com/pdftsp/pdftsp/internal/sim"
	"github.com/pdftsp/pdftsp/internal/task"
	"github.com/pdftsp/pdftsp/internal/timeslot"
	"github.com/pdftsp/pdftsp/internal/trace"
	"github.com/pdftsp/pdftsp/internal/vendor"
)

// shardWorkload generates the shared bid stream the sharded tests route.
func shardWorkload(t *testing.T, slots int, rate float64, seed int64) []task.Task {
	t.Helper()
	tc := trace.DefaultConfig()
	tc.Seed = seed
	tc.Horizon = timeslot.NewHorizon(slots)
	tc.RatePerSlot = rate
	tasks, err := trace.Generate(tc)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return tasks
}

// newShardStack wires one shard: its own cluster slice, marketplace, and
// scheduler calibrated against the full workload. Building it twice with
// the same arguments yields a deterministic twin.
func newShardStack(t *testing.T, slots, nodes int, seed int64, tasks []task.Task) *testStack {
	t.Helper()
	h := timeslot.NewHorizon(slots)
	model := lora.GPT2Small()
	specs := cluster.Uniform(nodes, gpu.A100, lora.NodeCapUnits(model, gpu.A100, h), gpu.A100.MemGB)
	cl, err := cluster.New(cluster.Config{Horizon: h, BaseModelGB: lora.BaseMemoryGB(model)}, specs)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	mkt, err := vendor.Standard(4, seed+7)
	if err != nil {
		t.Fatalf("marketplace: %v", err)
	}
	sched, err := core.New(cl, core.CalibrateDuals(tasks, model, cl, mkt))
	if err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	return &testStack{cl: cl, sched: sched, model: model, mkt: mkt, tasks: tasks}
}

// shardDecision locates a decided bid and the shard that decided it by
// iterating the Auctioneer's Brokers surface — what callers that need
// per-shard attribution do now that DecisionFor is shape-blind.
func shardDecision(t *testing.T, s *Shards, id int) (schedule.Decision, int, bool) {
	t.Helper()
	for i, b := range s.Brokers() {
		d, ok, err := b.DecisionFor(id)
		if err != nil {
			t.Fatalf("shard %d DecisionFor(%d): %v", i, id, err)
		}
		if ok {
			return d, i, true
		}
	}
	return schedule.Decision{}, -1, false
}

// driveShards routes the whole workload through the fleet slot by slot
// (SubmitBatchAck at each arrival slot, then Step), insisting every
// intake verdict is clean.
func driveShards(t *testing.T, s *Shards, slots int, tasks []task.Task) {
	t.Helper()
	perSlot := make(map[int][]task.Task)
	for _, tk := range tasks {
		perSlot[tk.Arrival] = append(perSlot[tk.Arrival], tk)
	}
	for slot := 0; slot < slots; slot++ {
		batch := perSlot[slot]
		if len(batch) > 0 {
			verdicts := make([]error, len(batch))
			if _, err := s.SubmitBatchAck(context.Background(), batch, verdicts); err != nil {
				t.Fatalf("slot %d: SubmitBatchAck: %v", slot, err)
			}
			for i, v := range verdicts {
				if v != nil {
					t.Fatalf("slot %d: bid %d refused: %v", slot, batch[i].ID, v)
				}
			}
		}
		if _, err := s.Step(1); err != nil {
			t.Fatalf("slot %d: Step: %v", slot, err)
		}
	}
}

// TestShardCountInvariance pins the shard-count-invariance contract: a
// 1-shard routed fleet is bit-for-bit the monolithic broker — same
// decisions, same duals, same ledger, same accounting. The router may
// only ever redistribute work, never change what a shard computes.
func TestShardCountInvariance(t *testing.T) {
	const slots, nodes = 24, 4
	tasks := shardWorkload(t, slots, 3, 11)

	mono := newShardStack(t, slots, nodes, 11, tasks)
	b := startBroker(t, mono.brokerOptions())
	perSlot := make(map[int][]task.Task)
	for _, tk := range tasks {
		perSlot[tk.Arrival] = append(perSlot[tk.Arrival], tk)
	}
	for slot := 0; slot < slots; slot++ {
		if batch := perSlot[slot]; len(batch) > 0 {
			verdicts := make([]error, len(batch))
			if _, err := b.SubmitBatchAck(context.Background(), batch, verdicts); err != nil {
				t.Fatalf("mono slot %d: %v", slot, err)
			}
			for _, v := range verdicts {
				if v != nil {
					t.Fatalf("mono refusal: %v", v)
				}
			}
		}
		if _, err := b.Step(1); err != nil {
			t.Fatalf("mono Step: %v", err)
		}
	}
	if err := b.Drain(context.Background()); err != nil {
		t.Fatalf("mono Drain: %v", err)
	}

	routed := newShardStack(t, slots, nodes, 11, tasks)
	s, err := NewShards(ShardsOptions{}, ShardSpec{Key: "solo", Options: routed.brokerOptions()})
	if err != nil {
		t.Fatalf("NewShards: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	driveShards(t, s, slots, tasks)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	for _, tk := range tasks {
		want, ok, err := b.DecisionFor(tk.ID)
		if err != nil || !ok {
			t.Fatalf("mono decision %d: ok=%v err=%v", tk.ID, ok, err)
		}
		got, si, ok := shardDecision(t, s, tk.ID)
		if !ok {
			t.Fatalf("routed decision %d missing", tk.ID)
		}
		if si != 0 {
			t.Fatalf("task %d routed to shard %d in a 1-shard fleet", tk.ID, si)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("task %d: routed decision %+v, monolithic %+v", tk.ID, got, want)
		}
	}
	if !mono.sched.SnapshotDuals().Equal(routed.sched.SnapshotDuals()) {
		t.Fatal("duals diverged between monolithic and 1-shard routed runs")
	}
	if !reflect.DeepEqual(mono.cl.Snapshot(), routed.cl.Snapshot()) {
		t.Fatal("ledgers diverged between monolithic and 1-shard routed runs")
	}
	wantRes, gotRes := b.Result(), s.Results()[0]
	if wantRes.Welfare != gotRes.Welfare || wantRes.Revenue != gotRes.Revenue ||
		wantRes.Admitted != gotRes.Admitted || wantRes.Rejected != gotRes.Rejected {
		t.Fatalf("accounting diverged: routed %+v, monolithic %+v", gotRes, wantRes)
	}
}

// TestShardsMatchSimRunTwins is the sharded form of the repo's anchor
// property: every shard's outcome is bit-identical to a sequential
// sim.Run of the subsequence the router fed it.
func TestShardsMatchSimRunTwins(t *testing.T) {
	const slots, shards, nodesPerShard = 24, 3, 2
	tasks := shardWorkload(t, slots, 4, 17)

	mk := func() []*testStack {
		out := make([]*testStack, shards)
		for i := range out {
			out[i] = newShardStack(t, slots, nodesPerShard, 17+int64(i), tasks)
		}
		return out
	}
	live := mk()
	specs := make([]ShardSpec, shards)
	for i, st := range live {
		specs[i] = ShardSpec{Key: filepath.Join("gpt2-small", string(rune('0'+i))), Options: st.brokerOptions()}
	}
	s, err := NewShards(ShardsOptions{}, specs...)
	if err != nil {
		t.Fatalf("NewShards: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	driveShards(t, s, slots, tasks)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Recover each task's shard assignment, then replay each shard's
	// subsequence through a twin stack sequentially.
	assign := make([]int, len(tasks))
	for i, tk := range tasks {
		_, si, ok := shardDecision(t, s, tk.ID)
		if !ok {
			t.Fatalf("decision %d missing", tk.ID)
		}
		assign[i] = si
	}
	spread := map[int]int{}
	for _, si := range assign {
		spread[si]++
	}
	if len(spread) != shards {
		t.Fatalf("router used %d of %d shards: %v", len(spread), shards, spread)
	}
	twins := mk()
	for si, tw := range twins {
		var sub []task.Task
		for i := range tasks {
			if assign[i] == si {
				sub = append(sub, tasks[i])
			}
		}
		want, err := sim.Run(tw.cl, tw.sched, sub, sim.Config{
			Model: tw.model, Market: tw.mkt, CollectDecisions: true,
		})
		if err != nil {
			t.Fatalf("twin %d: %v", si, err)
		}
		got := s.Results()[si]
		if got.Welfare != want.Welfare || got.Revenue != want.Revenue ||
			got.Admitted != want.Admitted || got.Rejected != want.Rejected ||
			got.VendorSpend != want.VendorSpend || got.EnergySpend != want.EnergySpend {
			t.Fatalf("shard %d accounting: live %+v, twin %+v", si, got, want)
		}
		for j, tk := range sub {
			d, _, _ := s.DecisionFor(tk.ID)
			wd := want.Decisions[j]
			if d.Admitted != wd.Admitted || d.Payment != wd.Payment || d.Reason != wd.Reason {
				t.Fatalf("shard %d task %d: live %+v, twin %+v", si, tk.ID, d, wd)
			}
		}
		if !live[si].sched.SnapshotDuals().Equal(tw.sched.SnapshotDuals()) {
			t.Fatalf("shard %d duals diverged from twin", si)
		}
		if !reflect.DeepEqual(live[si].cl.Snapshot(), tw.cl.Snapshot()) {
			t.Fatalf("shard %d ledger diverged from twin", si)
		}
	}
}

// TestShardManifestKillRestore kills the whole fleet mid-horizon and
// restores every shard from the manifest: the resumed run must finish
// exactly as an uninterrupted twin fleet does.
func TestShardManifestKillRestore(t *testing.T) {
	const slots, shards, killAt = 24, 2, 12
	tasks := shardWorkload(t, slots, 3, 23)
	dir := t.TempDir()
	manifest := filepath.Join(dir, "fleet.manifest")

	mkFleet := func(ckpt bool) *Shards {
		specs := make([]ShardSpec, shards)
		for i := 0; i < shards; i++ {
			st := newShardStack(t, slots, 2, 23+int64(i), tasks)
			opts := st.brokerOptions()
			if ckpt {
				opts.CheckpointPath = filepath.Join(dir, "shard"+string(rune('0'+i))+".ckpt")
				opts.CheckpointEvery = 1
				opts.CheckpointFullEvery = 4
			}
			specs[i] = ShardSpec{Key: "gpt2-small/" + string(rune('0'+i)), Options: opts}
		}
		mopts := ShardsOptions{}
		if ckpt {
			mopts.ManifestPath = manifest
		}
		s, err := NewShards(mopts, specs...)
		if err != nil {
			t.Fatalf("NewShards: %v", err)
		}
		return s
	}

	perSlot := make(map[int][]task.Task)
	for _, tk := range tasks {
		perSlot[tk.Arrival] = append(perSlot[tk.Arrival], tk)
	}
	drive := func(s *Shards, from, to int) {
		for slot := from; slot < to; slot++ {
			if batch := perSlot[slot]; len(batch) > 0 {
				verdicts := make([]error, len(batch))
				if _, err := s.SubmitBatchAck(context.Background(), batch, verdicts); err != nil {
					t.Fatalf("slot %d: %v", slot, err)
				}
				for _, v := range verdicts {
					if v != nil {
						t.Fatalf("slot %d refusal: %v", slot, v)
					}
				}
			}
			if _, err := s.Step(1); err != nil {
				t.Fatalf("slot %d Step: %v", slot, err)
			}
		}
	}

	// Uninterrupted twin fleet.
	ref := mkFleet(false)
	if err := ref.Start(); err != nil {
		t.Fatalf("ref Start: %v", err)
	}
	drive(ref, 0, slots)
	if err := ref.Drain(context.Background()); err != nil {
		t.Fatalf("ref Drain: %v", err)
	}

	// Checkpointed fleet, killed at killAt.
	s := mkFleet(true)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	drive(s, 0, killAt)
	decided := map[int]bool{}
	for _, tk := range tasks {
		if tk.Arrival < killAt {
			decided[tk.ID] = true
		}
	}
	s.Kill()

	// Fresh stacks, restored as one unit from the manifest.
	m, err := ReadShardManifest(manifest)
	if err != nil {
		t.Fatalf("ReadShardManifest: %v", err)
	}
	s2 := mkFleet(true)
	if err := s2.RestoreFromManifest(m); err != nil {
		t.Fatalf("RestoreFromManifest: %v", err)
	}
	if err := s2.Start(); err != nil {
		t.Fatalf("restored Start: %v", err)
	}
	if slot, err := s2.Slot(); err != nil || slot != killAt {
		t.Fatalf("restored at slot %d (err %v), want %d", slot, err, killAt)
	}
	// Every pre-kill decision survived the restore.
	for id := range decided {
		if _, ok, err := s2.DecisionFor(id); err != nil || !ok {
			t.Fatalf("decision %d lost across restore (ok=%v err=%v)", id, ok, err)
		}
	}
	drive(s2, killAt, slots)
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("restored Drain: %v", err)
	}

	for _, tk := range tasks {
		want, refSi, ok := shardDecision(t, ref, tk.ID)
		if !ok {
			t.Fatalf("ref decision %d missing", tk.ID)
		}
		got, si, ok := shardDecision(t, s2, tk.ID)
		if !ok {
			t.Fatalf("restored decision %d missing", tk.ID)
		}
		if si != refSi || !reflect.DeepEqual(got, want) {
			t.Fatalf("task %d: restored (shard %d) %+v, uninterrupted (shard %d) %+v",
				tk.ID, si, got, refSi, want)
		}
	}
	refW, gotW := 0.0, 0.0
	for i := 0; i < shards; i++ {
		refW += ref.Results()[i].Welfare
		gotW += s2.Results()[i].Welfare
	}
	if refW != gotW {
		t.Fatalf("welfare diverged across kill/restore: %v vs %v", gotW, refW)
	}
}

// TestShardRoutingRefusals pins the router's intake contract: bids
// without explicit IDs and bids for unhosted models are refused per-bid
// without disturbing the rest of the batch.
func TestShardRoutingRefusals(t *testing.T) {
	const slots = 8
	tasks := shardWorkload(t, slots, 2, 31)
	st := newShardStack(t, slots, 2, 31, tasks)
	s, err := NewShards(ShardsOptions{}, ShardSpec{Options: st.brokerOptions()})
	if err != nil {
		t.Fatalf("NewShards: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Kill()

	good := tasks[0]
	noID := tasks[1]
	noID.ID = -1
	alien := tasks[2]
	alien.ModelName = "no-such-model"
	batch := []task.Task{good, noID, alien}
	verdicts := make([]error, len(batch))
	if _, err := s.SubmitBatchAck(context.Background(), batch, verdicts); err != nil {
		t.Fatalf("SubmitBatchAck: %v", err)
	}
	if verdicts[0] != nil {
		t.Fatalf("good bid refused: %v", verdicts[0])
	}
	if !errors.Is(verdicts[1], ErrShardNeedsID) {
		t.Fatalf("ID-less bid verdict %v, want ErrShardNeedsID", verdicts[1])
	}
	if !errors.Is(verdicts[2], ErrUnroutable) {
		t.Fatalf("alien-model bid verdict %v, want ErrUnroutable", verdicts[2])
	}
	if st, err := s.FleetStatus(); err != nil || st.Unroutable != 1 {
		t.Fatalf("status unroutable %d (err %v), want 1", st.Unroutable, err)
	}
}
