package zones

import (
	"testing"

	"github.com/pdftsp/pdftsp/internal/baseline"
	"github.com/pdftsp/pdftsp/internal/cluster"
	"github.com/pdftsp/pdftsp/internal/core"
	"github.com/pdftsp/pdftsp/internal/gpu"
	"github.com/pdftsp/pdftsp/internal/lora"
	"github.com/pdftsp/pdftsp/internal/sim"
	"github.com/pdftsp/pdftsp/internal/task"
	"github.com/pdftsp/pdftsp/internal/timeslot"
	"github.com/pdftsp/pdftsp/internal/trace"
	"github.com/pdftsp/pdftsp/internal/vendor"
)

func makeZone(t *testing.T, model lora.ModelConfig, nodes int, mkt *vendor.Marketplace) *Zone {
	t.Helper()
	h := timeslot.NewHorizon(48)
	cl, err := cluster.New(cluster.Config{
		Horizon:     h,
		BaseModelGB: lora.BaseMemoryGB(model),
	}, cluster.Uniform(nodes, gpu.A100, lora.NodeCapUnits(model, gpu.A100, h), gpu.A100.MemGB))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.New(cl, core.Options{Alpha: 2, Beta: 10})
	if err != nil {
		t.Fatal(err)
	}
	return &Zone{Model: model, Cluster: cl, Scheduler: sched, Market: mkt}
}

func multiModelWorkload(t *testing.T) []task.Task {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Horizon = timeslot.NewHorizon(48)
	cfg.RatePerSlot = 3
	cfg.Seed = 5
	cfg.PrepProb = 0
	cfg.Models = []trace.ModelShare{
		{Model: lora.GPT2Small(), Weight: 0.7},
		{Model: lora.GPT2Medium(), Weight: 0.3},
	}
	tasks, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(); err == nil {
		t.Fatal("empty router accepted")
	}
	if _, err := NewRouter(&Zone{}); err == nil {
		t.Fatal("incomplete zone accepted")
	}
	mkt, _ := vendor.Standard(2, 1)
	z := makeZone(t, lora.GPT2Small(), 2, mkt)
	if _, err := NewRouter(z, makeZone(t, lora.GPT2Small(), 2, mkt)); err == nil {
		t.Fatal("duplicate model zones accepted")
	}
}

func TestRouterRoutesByModel(t *testing.T) {
	mkt, _ := vendor.Standard(2, 1)
	small := makeZone(t, lora.GPT2Small(), 2, mkt)
	medium := makeZone(t, lora.GPT2Medium(), 2, mkt)
	r, err := NewRouter(small, medium)
	if err != nil {
		t.Fatal(err)
	}
	if z, ok := r.Zone("gpt2-medium"); !ok || z != medium {
		t.Fatal("medium zone not found")
	}
	// Empty model name routes to the default (first) zone.
	if z, ok := r.Zone(""); !ok || z != small {
		t.Fatal("default zone wrong")
	}
	if names := r.ZoneNames(); len(names) != 2 || names[0] != "gpt2-small" {
		t.Fatalf("zone names %v", names)
	}
}

func TestRouterRejectsUnknownModel(t *testing.T) {
	mkt, _ := vendor.Standard(2, 1)
	r, err := NewRouter(makeZone(t, lora.GPT2Small(), 2, mkt))
	if err != nil {
		t.Fatal(err)
	}
	tk := task.Task{ID: 1, Arrival: 0, Deadline: 10, Work: 10, MemGB: 4, Batch: 16, Bid: 50, ModelName: "llama-7b"}
	d, zone := r.Offer(&tk)
	if d.Admitted || zone != "" {
		t.Fatal("unknown model task was routed")
	}
}

func TestMultiZoneRun(t *testing.T) {
	mkt, _ := vendor.Standard(2, 1)
	small := makeZone(t, lora.GPT2Small(), 3, mkt)
	medium := makeZone(t, lora.GPT2Medium(), 3, mkt)
	r, err := NewRouter(small, medium)
	if err != nil {
		t.Fatal(err)
	}
	tasks := multiModelWorkload(t)
	res, err := Run(r, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unroutable != 0 {
		t.Fatalf("%d tasks unroutable", res.Unroutable)
	}
	sSmall, sMedium := res.PerZone["gpt2-small"], res.PerZone["gpt2-medium"]
	if sSmall.Admitted == 0 || sMedium.Admitted == 0 {
		t.Fatalf("a zone admitted nothing: %+v / %+v", sSmall, sMedium)
	}
	if res.TotalWelfare <= 0 {
		t.Fatalf("total welfare %v", res.TotalWelfare)
	}
	sum := sSmall.Welfare + sMedium.Welfare
	if diff := sum - res.TotalWelfare; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("total %v != per-zone sum %v", res.TotalWelfare, sum)
	}
	// Zone isolation: tasks of one model never consume the other zone's
	// cluster.
	small2, medium2 := small.Cluster.Utilization(), medium.Cluster.Utilization()
	if small2 == 0 || medium2 == 0 {
		t.Fatal("a zone's cluster is untouched despite admissions")
	}
}

func TestRunRejectsUnsorted(t *testing.T) {
	mkt, _ := vendor.Standard(2, 1)
	r, err := NewRouter(makeZone(t, lora.GPT2Small(), 2, mkt))
	if err != nil {
		t.Fatal(err)
	}
	tasks := []task.Task{
		{ID: 0, Arrival: 5, Deadline: 8, Work: 5, MemGB: 2, Batch: 8, Bid: 10},
		{ID: 1, Arrival: 1, Deadline: 8, Work: 5, MemGB: 2, Batch: 8, Bid: 10},
	}
	if _, err := Run(r, tasks); err == nil {
		t.Fatal("unsorted tasks accepted")
	}
}

func TestZonesWorkWithBaselines(t *testing.T) {
	// Zones are scheduler-agnostic: EFT zones compose the same way.
	mkt, _ := vendor.Standard(2, 1)
	h := timeslot.NewHorizon(48)
	model := lora.GPT2Small()
	cl, err := cluster.New(cluster.Config{Horizon: h, BaseModelGB: lora.BaseMemoryGB(model)},
		cluster.Uniform(2, gpu.A100, lora.NodeCapUnits(model, gpu.A100, h), gpu.A100.MemGB))
	if err != nil {
		t.Fatal(err)
	}
	var sched sim.Scheduler = baseline.NewEFT()
	r, err := NewRouter(&Zone{Model: model, Cluster: cl, Scheduler: sched, Market: mkt})
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Horizon = h
	cfg.RatePerSlot = 2
	cfg.PrepProb = 0
	tasks, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(r, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerZone["gpt2-small"].Admitted == 0 {
		t.Fatal("EFT zone admitted nothing")
	}
}
