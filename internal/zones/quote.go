package zones

import (
	"math"

	"github.com/pdftsp/pdftsp/internal/cluster"
	"github.com/pdftsp/pdftsp/internal/core"
	"github.com/pdftsp/pdftsp/internal/gpu"
	"github.com/pdftsp/pdftsp/internal/lora"
	"github.com/pdftsp/pdftsp/internal/task"
	"github.com/pdftsp/pdftsp/internal/timeslot"
)

// Quote is one zone's published price book: the static cluster facts a
// router may read without touching the zone's live ledger (GPU specs,
// memory caps, the energy price curve) plus prefix sums of the zone's
// dual prices λ/φ at some slot boundary. A Quote is immutable — refreshes
// build a new Quote via WithDuals — so routers may read it lock-free
// (e.g. through an atomic.Pointer) while the zone's own goroutine keeps
// auctioning. This is the paper's shadow-price coordination: zones
// advertise λ/φ, and placement needs nothing else from them.
//
// The estimate is deliberately a quote, not a reservation: it prices a
// task at the mean dual + energy cost over its feasibility window,
// assuming the work runs on the zone's single best node. The zone's own
// auction (Algorithm 1) still makes the admission decision against the
// live ledger; the Quote only decides which zone gets to run it.
type Quote struct {
	key   string
	model lora.ModelConfig
	h     timeslot.Horizon

	specs  []gpu.Spec
	memCap []float64
	// energy[k][t+1] is the prefix sum of the per-unit-work energy cost
	// on node k over slots [0, t]; captured at construction (the curve is
	// immutable after cluster build).
	energy [][]float64
	// lambda/phi[k][t+1] are prefix sums of the dual prices; zero until
	// WithDuals publishes a snapshot.
	lambda [][]float64
	phi    [][]float64
}

// NewQuote captures the static half of a zone's price book from its
// cluster. Call it before the zone starts serving — it reads the cluster
// directly — and publish dual refreshes with WithDuals afterwards.
func NewQuote(key string, model lora.ModelConfig, cl *cluster.Cluster) *Quote {
	h := cl.Horizon()
	K := cl.NumNodes()
	q := &Quote{
		key:    key,
		model:  model,
		h:      h,
		specs:  make([]gpu.Spec, K),
		memCap: make([]float64, K),
		energy: make([][]float64, K),
	}
	for k := 0; k < K; k++ {
		q.specs[k] = cl.Node(k).Spec
		q.memCap[k] = cl.TaskMemCap(k)
		e := make([]float64, h.T+1)
		for t := 0; t < h.T; t++ {
			e[t+1] = e[t] + cl.UnitEnergyCost(k, t)
		}
		q.energy[k] = e
	}
	return q
}

// Key returns the zone key the quote was built for.
func (q *Quote) Key() string { return q.key }

// WithDuals returns a new Quote carrying prefix sums of ds; the static
// cluster facts are shared with the receiver. A zero-value ds (no dual
// state, e.g. a baseline scheduler) yields a quote priced on energy
// alone, which keeps placement meaningful for schedulers that publish no
// shadow prices.
func (q *Quote) WithDuals(ds core.DualState) *Quote {
	nq := *q
	K := len(q.specs)
	nq.lambda = make([][]float64, K)
	nq.phi = make([][]float64, K)
	for k := 0; k < K; k++ {
		l := make([]float64, q.h.T+1)
		p := make([]float64, q.h.T+1)
		if k < len(ds.Lambda) {
			for t := 0; t < q.h.T && t < len(ds.Lambda[k]); t++ {
				l[t+1] = l[t] + ds.Lambda[k][t]
			}
		}
		if k < len(ds.Phi) {
			for t := 0; t < q.h.T && t < len(ds.Phi[k]); t++ {
				p[t+1] = p[t] + ds.Phi[k][t]
			}
		}
		nq.lambda[k] = l
		nq.phi[k] = p
	}
	return &nq
}

// mean returns the mean of prefix-summed values over the inclusive slot
// window [s, e].
func mean(prefix []float64, s, e int) float64 {
	return (prefix[e+1] - prefix[s]) / float64(e-s+1)
}

// Surplus estimates the price-adjusted surplus of placing t in this
// zone: Bid minus the dual-price + energy cost of the task's work on the
// zone's best node, averaged over the task's feasibility window. It
// returns -Inf when no node in the zone can feasibly host the task
// (memory cap, zero throughput, or too few slots before the deadline) —
// the router's signal to look elsewhere.
func (q *Quote) Surplus(t *task.Task) float64 {
	start := t.Arrival
	if start < 0 {
		start = 0
	}
	win := timeslot.Window{Start: start, End: t.Deadline}.ClipTo(q.h)
	if win.Len() == 0 {
		return math.Inf(-1)
	}
	best := math.Inf(-1)
	for k := range q.specs {
		if t.MemGB > q.memCap[k] {
			continue
		}
		s := lora.TaskUnitsPerSlot(q.model, q.specs[k], t.Batch, q.h)
		if s <= 0 {
			continue
		}
		need := (t.Work + s - 1) / s
		if need > win.Len() {
			continue
		}
		price := mean(q.energy[k], win.Start, win.End) * float64(t.Work)
		if q.lambda != nil {
			price += float64(need) * (mean(q.lambda[k], win.Start, win.End)*float64(s) +
				mean(q.phi[k], win.Start, win.End)*t.MemGB)
		}
		if sur := t.Bid - price; sur > best {
			best = sur
		}
	}
	return best
}

// tieBand is the absolute score slack within which two zones count as
// tied. Quotes are estimates, so scores equal up to floating-point noise
// must not all collapse onto the lowest-indexed zone — identical fresh
// shards publish identical duals, and a first-wins tie-break would route
// every bid to shard 0.
const tieBand = 1e-9

// Place picks the destination zone for t among the candidate indices
// cand (indices into quotes). The rule: highest estimated surplus wins;
// candidates within a relative tie band of the best are spread
// deterministically by task ID (tie[id mod n]), so equal-priced shards
// share load without any coordination and any two routers holding the
// same quotes make the same choice. When no candidate is feasible the
// bid is still placed (by ID, round-robin) so rejections are spread too.
// Returns -1 only when cand is empty.
func Place(t *task.Task, quotes []*Quote, cand []int) int {
	switch len(cand) {
	case 0:
		return -1
	case 1:
		return cand[0]
	}
	best := math.Inf(-1)
	var scoresBuf [16]float64
	scores := scoresBuf[:0]
	if len(cand) > cap(scores) {
		scores = make([]float64, 0, len(cand))
	}
	for _, i := range cand {
		s := quotes[i].Surplus(t)
		scores = append(scores, s)
		if s > best {
			best = s
		}
	}
	id := t.ID
	if id < 0 {
		id = 0
	}
	if math.IsInf(best, -1) {
		// Nowhere feasible: the zone auction will reject it; spread the
		// rejections.
		return cand[id%len(cand)]
	}
	band := tieBand
	if rel := math.Abs(best) * tieBand; rel > band {
		band = rel
	}
	var tiedBuf [16]int
	tied := tiedBuf[:0]
	for j := range scores {
		if scores[j] >= best-band {
			tied = append(tied, cand[j])
		}
	}
	if len(tied) == 1 {
		return tied[0]
	}
	return tied[id%len(tied)]
}
