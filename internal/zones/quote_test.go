package zones

import (
	"math"
	"testing"

	"github.com/pdftsp/pdftsp/internal/core"
	"github.com/pdftsp/pdftsp/internal/lora"
	"github.com/pdftsp/pdftsp/internal/task"
	"github.com/pdftsp/pdftsp/internal/vendor"
)

func testTask(id int) task.Task {
	return task.Task{
		ID: id, Arrival: 0, Deadline: 20, Work: 40,
		MemGB: 4, Batch: 16, Rank: 8, Bid: 50, TrueValue: 50,
	}
}

// Two fresh replica shards publish identical duals (all zero), so every
// bid is an exact tie. The tie-break must be deterministic and must
// spread load across the tied shards instead of collapsing onto the
// first.
func TestPlaceSpreadsExactTies(t *testing.T) {
	mkt, _ := vendor.Standard(2, 1)
	a := makeZone(t, lora.GPT2Small(), 2, mkt)
	b := makeZone(t, lora.GPT2Small(), 2, mkt)
	a.Key, b.Key = "shard/0", "shard/1"
	r, err := NewRouter(a, b)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for id := 0; id < 100; id++ {
		tk := testTask(id)
		zi := r.Place(&tk)
		if zi < 0 {
			t.Fatalf("task %d unroutable", id)
		}
		counts[zi]++
		// Determinism: the same task re-placed under the same quotes
		// lands on the same shard.
		if again := r.Place(&tk); again != zi {
			t.Fatalf("task %d placed on %d then %d", id, zi, again)
		}
		// Exact ties spread by ID.
		if want := id % 2; zi != want {
			t.Fatalf("task %d: tie-break chose shard %d, want %d", id, zi, want)
		}
	}
	if counts[0] != 50 || counts[1] != 50 {
		t.Fatalf("tie-break did not spread load: %v", counts)
	}
}

// Once one shard's duals rise, the other shard's quote wins outright.
func TestPlaceFollowsDualPrices(t *testing.T) {
	mkt, _ := vendor.Standard(2, 1)
	a := makeZone(t, lora.GPT2Small(), 2, mkt)
	b := makeZone(t, lora.GPT2Small(), 2, mkt)
	a.Key, b.Key = "shard/0", "shard/1"
	r, err := NewRouter(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Inflate shard 0's compute price by hand and republish.
	sched := a.Scheduler.(*core.Scheduler)
	ds := sched.SnapshotDuals()
	for k := range ds.Lambda {
		for s := range ds.Lambda[k] {
			ds.Lambda[k][s] = 5
		}
	}
	if err := sched.RestoreDuals(ds); err != nil {
		t.Fatal(err)
	}
	r.RefreshQuotes()
	for id := 0; id < 20; id++ {
		tk := testTask(id)
		if zi := r.Place(&tk); zi != 1 {
			t.Fatalf("task %d placed on expensive shard %d", id, zi)
		}
	}
}

// A bid no shard can feasibly host is still placed (the zone auction
// records the rejection) and the rejections spread deterministically.
func TestPlaceInfeasibleSpreads(t *testing.T) {
	mkt, _ := vendor.Standard(2, 1)
	a := makeZone(t, lora.GPT2Small(), 2, mkt)
	b := makeZone(t, lora.GPT2Small(), 2, mkt)
	a.Key, b.Key = "shard/0", "shard/1"
	r, err := NewRouter(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 10; id++ {
		tk := testTask(id)
		tk.MemGB = 1e9 // larger than any node's cap
		if got := r.quotes[0].Surplus(&tk); !math.IsInf(got, -1) {
			t.Fatalf("surplus %v for an infeasible task, want -Inf", got)
		}
		if zi := r.Place(&tk); zi != id%2 {
			t.Fatalf("infeasible task %d placed on %d, want %d", id, zi, id%2)
		}
	}
}

// Surplus prices the feasibility window: a task whose deadline leaves
// too few slots is infeasible, and higher duals strictly lower the
// surplus.
func TestSurplusWindowAndDuals(t *testing.T) {
	mkt, _ := vendor.Standard(2, 1)
	z := makeZone(t, lora.GPT2Small(), 1, mkt)
	r, err := NewRouter(z)
	if err != nil {
		t.Fatal(err)
	}
	q := r.quotes[0]
	tk := testTask(0)
	base := q.Surplus(&tk)
	if math.IsInf(base, -1) {
		t.Fatal("feasible task quoted -Inf")
	}
	tight := tk
	tight.Deadline = tk.Arrival // one slot for 40 units of work
	if got := q.Surplus(&tight); !math.IsInf(got, -1) {
		t.Fatalf("deadline-infeasible task quoted %v, want -Inf", got)
	}
	ds := zoneDuals(z.Scheduler)
	for k := range ds.Lambda {
		for s := range ds.Lambda[k] {
			ds.Lambda[k][s] = 1
		}
	}
	priced := q.WithDuals(ds)
	if got := priced.Surplus(&tk); got >= base {
		t.Fatalf("surplus %v did not drop under positive duals (was %v)", got, base)
	}
}
