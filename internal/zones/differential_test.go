package zones

import (
	"testing"

	"github.com/pdftsp/pdftsp/internal/lora"
	"github.com/pdftsp/pdftsp/internal/sim"
	"github.com/pdftsp/pdftsp/internal/task"
	"github.com/pdftsp/pdftsp/internal/vendor"
)

// TestRunMatchesPerZoneSimRun is the differential anchor for the sharded
// broker: a zones.Run over any router must report, per zone, exactly
// what a sequential sim.Run of that zone's routed subsequence reports —
// welfare, revenue, spends, admit/reject counts, and reject reasons.
// The pre-fix zones.Run recomputed admitted welfare locally instead of
// using the decision's accounting; this pins the fixed path to the
// single shared Account tally.
func runDifferential(t *testing.T, mkZones func() []*Zone, tasks []task.Task) {
	t.Helper()
	live := mkZones()
	r, err := NewRouter(live...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(r, tasks)
	if err != nil {
		t.Fatal(err)
	}

	// Twin zones, rebuilt fresh with identical configuration; replay each
	// zone's routed subsequence sequentially.
	twins := mkZones()
	total := 0.0
	for zi, tw := range twins {
		key := tw.key()
		var sub []task.Task
		for i := range tasks {
			if res.Assignments[i] == key {
				sub = append(sub, tasks[i])
			}
		}
		want, err := sim.Run(tw.Cluster, tw.Scheduler, sub, sim.Config{
			Model:  tw.Model,
			Market: tw.Market,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := res.PerZone[key]
		if got == nil {
			t.Fatalf("zone %q missing from result", key)
		}
		if got.Admitted != want.Admitted || got.Rejected != want.Rejected {
			t.Fatalf("zone %q: %d/%d admitted/rejected, sim.Run says %d/%d",
				key, got.Admitted, got.Rejected, want.Admitted, want.Rejected)
		}
		if got.Welfare != want.Welfare {
			t.Fatalf("zone %q: welfare %v, sim.Run says %v", key, got.Welfare, want.Welfare)
		}
		if got.Revenue != want.Revenue {
			t.Fatalf("zone %q: revenue %v, sim.Run says %v", key, got.Revenue, want.Revenue)
		}
		if got.VendorSpend != want.VendorSpend || got.EnergySpend != want.EnergySpend {
			t.Fatalf("zone %q: spends vendor=%v energy=%v, sim.Run says vendor=%v energy=%v",
				key, got.VendorSpend, got.EnergySpend, want.VendorSpend, want.EnergySpend)
		}
		for reason, n := range want.RejectReasons {
			if got.RejectReasons[reason] != n {
				t.Fatalf("zone %q: reason %q tallied %d, sim.Run says %d",
					key, reason, got.RejectReasons[reason], n)
			}
		}
		// The live zone's final ledger matches the twin's byte for byte:
		// routing fed it exactly the subsequence the twin replayed.
		if live[zi].Cluster.Utilization() != tw.Cluster.Utilization() {
			t.Fatalf("zone %q: live utilization %v, twin %v",
				key, live[zi].Cluster.Utilization(), tw.Cluster.Utilization())
		}
		total += want.Welfare
	}
	if res.TotalWelfare != total {
		t.Fatalf("total welfare %v, per-zone sim.Run sum %v", res.TotalWelfare, total)
	}
}

func TestRunMatchesPerZoneSimRun(t *testing.T) {
	tasks := multiModelWorkload(t)
	runDifferential(t, func() []*Zone {
		mkt, _ := vendor.Standard(2, 1)
		return []*Zone{
			makeZone(t, lora.GPT2Small(), 3, mkt),
			makeZone(t, lora.GPT2Medium(), 3, mkt),
		}
	}, tasks)
}

// The same differential holds with replica shards of a single model —
// the exact topology service.Shards runs — where placement is decided
// purely by the published dual prices and the ID tie-break.
func TestRunMatchesPerZoneSimRunReplicaShards(t *testing.T) {
	cfgTasks := multiModelWorkload(t)
	// Keep only the small-model tasks so both shards serve every bid.
	var tasks []task.Task
	for _, tk := range cfgTasks {
		if tk.ModelName == "gpt2-small" {
			tasks = append(tasks, tk)
		}
	}
	runDifferential(t, func() []*Zone {
		mkt, _ := vendor.Standard(2, 1)
		a := makeZone(t, lora.GPT2Small(), 2, mkt)
		b := makeZone(t, lora.GPT2Small(), 2, mkt)
		a.Key, b.Key = "gpt2-small/0", "gpt2-small/1"
		return []*Zone{a, b}
	}, tasks)
}
