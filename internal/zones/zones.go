// Package zones implements the multi-model data center the paper sketches
// in Section 2.1: "Different 'zones' within the cloud data center can be
// set up for tasks fine-tuning different pre-trained models." Each zone
// owns a cluster whose nodes hold one shared pre-trained model replica,
// plus its own scheduler; a Router dispatches each arriving bid to the
// zone of the model it fine-tunes.
//
// Because the paper's formulation (and therefore the pdFTSP analysis) is
// per-model, zones compose without touching the core algorithm: each
// zone's auction runs independently, and the data center's social welfare
// is the sum over zones.
package zones

import (
	"fmt"

	"github.com/pdftsp/pdftsp/internal/cluster"
	"github.com/pdftsp/pdftsp/internal/lora"
	"github.com/pdftsp/pdftsp/internal/schedule"
	"github.com/pdftsp/pdftsp/internal/sim"
	"github.com/pdftsp/pdftsp/internal/task"
	"github.com/pdftsp/pdftsp/internal/vendor"
)

// Zone is one model-scoped slice of the data center.
type Zone struct {
	// Model is the pre-trained model every task in this zone fine-tunes;
	// Model.Name is the routing key.
	Model lora.ModelConfig
	// Cluster holds the zone's nodes (base model replica accounted).
	Cluster *cluster.Cluster
	// Scheduler is the zone's admission/scheduling algorithm.
	Scheduler sim.Scheduler
	// Market is the zone's labor-vendor marketplace (may be shared
	// between zones; quotes are per-task, so sharing is safe).
	Market *vendor.Marketplace
}

// Router dispatches bids to zones by model name.
type Router struct {
	zones       map[string]*Zone
	order       []string
	defaultZone string
}

// NewRouter builds a router over the given zones. The first zone is the
// default for tasks with an empty ModelName.
func NewRouter(zs ...*Zone) (*Router, error) {
	if len(zs) == 0 {
		return nil, fmt.Errorf("zones: no zones")
	}
	r := &Router{zones: make(map[string]*Zone, len(zs))}
	for i, z := range zs {
		if z == nil || z.Cluster == nil || z.Scheduler == nil {
			return nil, fmt.Errorf("zones: zone %d incomplete", i)
		}
		if err := z.Model.Validate(); err != nil {
			return nil, fmt.Errorf("zones: zone %d: %w", i, err)
		}
		name := z.Model.Name
		if _, dup := r.zones[name]; dup {
			return nil, fmt.Errorf("zones: duplicate zone for model %q", name)
		}
		r.zones[name] = z
		r.order = append(r.order, name)
	}
	r.defaultZone = zs[0].Model.Name
	return r, nil
}

// Zone returns the zone for a model name ("" selects the default).
func (r *Router) Zone(modelName string) (*Zone, bool) {
	if modelName == "" {
		modelName = r.defaultZone
	}
	z, ok := r.zones[modelName]
	return z, ok
}

// ZoneNames returns the zone keys in registration order.
func (r *Router) ZoneNames() []string {
	return append([]string(nil), r.order...)
}

// Offer routes one bid to its zone and returns the zone's decision. A bid
// for an unknown model is rejected (no zone hosts its base weights).
func (r *Router) Offer(t *task.Task) (schedule.Decision, string) {
	z, ok := r.Zone(t.ModelName)
	if !ok {
		return schedule.Decision{
			TaskID: t.ID,
			Reason: schedule.ReasonNoSchedule,
		}, ""
	}
	env := schedule.NewTaskEnv(t, z.Cluster, z.Model, z.Market)
	return z.Scheduler.Offer(env), z.Model.Name
}

// Result aggregates a multi-zone run.
type Result struct {
	// PerZone maps model name to that zone's welfare accounting.
	PerZone map[string]*ZoneStats
	// Unroutable counts bids whose model no zone hosts.
	Unroutable int
	// TotalWelfare is the data center's social welfare.
	TotalWelfare float64
}

// ZoneStats is one zone's accounting.
type ZoneStats struct {
	Admitted, Rejected int
	Welfare            float64
	Revenue            float64
}

// Run replays a mixed-model workload (sorted by arrival) through the
// router.
func Run(r *Router, tasks []task.Task) (*Result, error) {
	if r == nil {
		return nil, fmt.Errorf("zones: nil router")
	}
	res := &Result{PerZone: make(map[string]*ZoneStats, len(r.zones))}
	for _, name := range r.order {
		res.PerZone[name] = &ZoneStats{}
	}
	prev := -1
	for i := range tasks {
		t := &tasks[i]
		if t.Arrival < prev {
			return nil, fmt.Errorf("zones: tasks not sorted by arrival (task %d)", t.ID)
		}
		prev = t.Arrival
		d, zoneName := r.Offer(t)
		if zoneName == "" {
			res.Unroutable++
			continue
		}
		zs := res.PerZone[zoneName]
		if d.Admitted {
			zs.Admitted++
			w := t.Bid - d.VendorCost - d.EnergyCost
			zs.Welfare += w
			zs.Revenue += d.Payment
			res.TotalWelfare += w
		} else {
			zs.Rejected++
		}
	}
	return res, nil
}
