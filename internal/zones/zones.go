// Package zones implements the multi-model data center the paper sketches
// in Section 2.1: "Different 'zones' within the cloud data center can be
// set up for tasks fine-tuning different pre-trained models." Each zone
// owns a cluster whose nodes hold one shared pre-trained model replica,
// plus its own scheduler; a Router places each arriving bid on the zone
// offering the best price-adjusted surplus, computed from the zones'
// published dual prices only (quote.go).
//
// Because the paper's formulation (and therefore the pdFTSP analysis) is
// per-model, zones compose without touching the core algorithm: each
// zone's auction runs independently, and the data center's social welfare
// is the sum over zones. A model may be served by several zones (replica
// shards of one cluster); the dual-price placement rule is then the only
// coordination between them — the pattern service.Shards runs live.
package zones

import (
	"fmt"

	"github.com/pdftsp/pdftsp/internal/cluster"
	"github.com/pdftsp/pdftsp/internal/core"
	"github.com/pdftsp/pdftsp/internal/lora"
	"github.com/pdftsp/pdftsp/internal/schedule"
	"github.com/pdftsp/pdftsp/internal/sim"
	"github.com/pdftsp/pdftsp/internal/task"
	"github.com/pdftsp/pdftsp/internal/vendor"
)

// Zone is one slice of the data center: a model-scoped cluster shard with
// its own scheduler (and therefore its own dual prices and ledger).
type Zone struct {
	// Key names the zone. Empty defaults to Model.Name; replica shards of
	// one model must carry distinct explicit keys.
	Key string
	// Model is the pre-trained model every task in this zone fine-tunes;
	// Model.Name is the routing key.
	Model lora.ModelConfig
	// Cluster holds the zone's nodes (base model replica accounted).
	Cluster *cluster.Cluster
	// Scheduler is the zone's admission/scheduling algorithm.
	Scheduler sim.Scheduler
	// Market is the zone's labor-vendor marketplace (may be shared
	// between zones; quotes are per-task, so sharing is safe).
	Market *vendor.Marketplace
}

// key returns the zone's routing key.
func (z *Zone) key() string {
	if z.Key != "" {
		return z.Key
	}
	return z.Model.Name
}

// DualSnapshotter is the read half of service.DualCheckpointer: a
// scheduler that can publish its dual prices. Schedulers without dual
// state (the greedy baselines) quote on energy alone.
type DualSnapshotter interface {
	SnapshotDuals() core.DualState
}

// zoneDuals reads a zone scheduler's dual prices, or a zero snapshot for
// schedulers that publish none.
func zoneDuals(s sim.Scheduler) core.DualState {
	if dc, ok := s.(DualSnapshotter); ok {
		return dc.SnapshotDuals()
	}
	return core.DualState{}
}

// Router places bids across zones: by model first, then — among the
// zones serving that model — by the best price-adjusted surplus under
// each zone's published Quote.
type Router struct {
	zones        []*Zone
	keys         []string
	byModel      map[string][]int
	defaultModel string
	base         []*Quote // static price books, duals not applied
	quotes       []*Quote // current published quotes
}

// NewRouter builds a router over the given zones. The first zone's model
// is the default for tasks with an empty ModelName. Several zones may
// serve the same model (replica shards) as long as their keys differ.
func NewRouter(zs ...*Zone) (*Router, error) {
	if len(zs) == 0 {
		return nil, fmt.Errorf("zones: no zones")
	}
	r := &Router{
		zones:   make([]*Zone, 0, len(zs)),
		keys:    make([]string, 0, len(zs)),
		byModel: make(map[string][]int, len(zs)),
		base:    make([]*Quote, 0, len(zs)),
		quotes:  make([]*Quote, 0, len(zs)),
	}
	seen := map[string]bool{}
	for i, z := range zs {
		if z == nil || z.Cluster == nil || z.Scheduler == nil {
			return nil, fmt.Errorf("zones: zone %d incomplete", i)
		}
		if err := z.Model.Validate(); err != nil {
			return nil, fmt.Errorf("zones: zone %d: %w", i, err)
		}
		key := z.key()
		if seen[key] {
			return nil, fmt.Errorf("zones: duplicate zone key %q (replica shards need distinct Key values)", key)
		}
		seen[key] = true
		idx := len(r.zones)
		r.zones = append(r.zones, z)
		r.keys = append(r.keys, key)
		r.byModel[z.Model.Name] = append(r.byModel[z.Model.Name], idx)
		q := NewQuote(key, z.Model, z.Cluster)
		r.base = append(r.base, q)
		r.quotes = append(r.quotes, q.WithDuals(zoneDuals(z.Scheduler)))
	}
	r.defaultModel = zs[0].Model.Name
	return r, nil
}

// Zone returns the first zone serving a model name ("" selects the
// default model).
func (r *Router) Zone(modelName string) (*Zone, bool) {
	if modelName == "" {
		modelName = r.defaultModel
	}
	idxs, ok := r.byModel[modelName]
	if !ok {
		return nil, false
	}
	return r.zones[idxs[0]], true
}

// ZoneNames returns the zone keys in registration order.
func (r *Router) ZoneNames() []string {
	return append([]string(nil), r.keys...)
}

// RefreshQuotes republishes every zone's Quote from its scheduler's
// current dual prices. Run calls it at each arrival-slot boundary — the
// cadence service.Shards uses live (duals only move at slot close), so a
// batch replay routes exactly as the sharded service does.
func (r *Router) RefreshQuotes() {
	for i, z := range r.zones {
		r.quotes[i] = r.base[i].WithDuals(zoneDuals(z.Scheduler))
	}
}

// Place picks the destination zone index for t under the current quotes,
// or -1 when no zone serves its model.
func (r *Router) Place(t *task.Task) int {
	model := t.ModelName
	if model == "" {
		model = r.defaultModel
	}
	return Place(t, r.quotes, r.byModel[model])
}

// Offer routes one bid under the current quotes and returns the chosen
// zone's decision and key. A bid for an unknown model is rejected (no
// zone hosts its base weights). Offer does not refresh quotes; callers
// replaying a workload should RefreshQuotes at slot boundaries (or use
// Run, which does).
func (r *Router) Offer(t *task.Task) (schedule.Decision, string) {
	zi := r.Place(t)
	if zi < 0 {
		return schedule.Decision{
			TaskID: t.ID,
			Reason: schedule.ReasonNoSchedule,
		}, ""
	}
	z := r.zones[zi]
	env := schedule.NewTaskEnv(t, z.Cluster, z.Model, z.Market)
	return z.Scheduler.Offer(env), r.keys[zi]
}

// Result aggregates a multi-zone run.
type Result struct {
	// PerZone maps zone key to that zone's accounting.
	PerZone map[string]*ZoneStats
	// Assignments records the zone key each task was routed to, indexed
	// like the input tasks ("" = unroutable). Twin replays (per-zone
	// sim.Run) reconstruct each zone's subsequence from it.
	Assignments []string
	// Unroutable counts bids whose model no zone hosts.
	Unroutable int
	// TotalWelfare is the data center's social welfare.
	TotalWelfare float64
}

// ZoneStats is one zone's accounting, taken verbatim from the zone's
// sim.Result tally — the same Account path sim.Run and service.Broker
// use — so a zones replay never drifts from the per-zone ground truth.
type ZoneStats struct {
	Admitted, Rejected int
	Welfare            float64
	Revenue            float64
	VendorSpend        float64
	EnergySpend        float64
	// RejectReasons tallies rejections by Decision.Reason.
	RejectReasons map[schedule.RejectReason]int
}

// Run replays a mixed-model workload (sorted by arrival) through the
// router, refreshing each zone's published quote at every slot boundary.
// Per-zone accounting flows through sim.Result.Account — the decision's
// own accounting — not a local recomputation.
func Run(r *Router, tasks []task.Task) (*Result, error) {
	if r == nil {
		return nil, fmt.Errorf("zones: nil router")
	}
	perZone := make([]*sim.Result, len(r.zones))
	for i, z := range r.zones {
		perZone[i] = sim.NewResult(z.Scheduler.Name())
	}
	res := &Result{
		PerZone:     make(map[string]*ZoneStats, len(r.zones)),
		Assignments: make([]string, len(tasks)),
	}
	prev := -1
	for i := range tasks {
		t := &tasks[i]
		if t.Arrival < prev {
			return nil, fmt.Errorf("zones: tasks not sorted by arrival (task %d)", t.ID)
		}
		if t.Arrival != prev {
			r.RefreshQuotes()
		}
		prev = t.Arrival
		zi := r.Place(t)
		if zi < 0 {
			res.Unroutable++
			continue
		}
		z := r.zones[zi]
		env := schedule.NewTaskEnv(t, z.Cluster, z.Model, z.Market)
		d := z.Scheduler.Offer(env)
		perZone[zi].Account(env, &d)
		res.Assignments[i] = r.keys[zi]
	}
	for i, pr := range perZone {
		res.PerZone[r.keys[i]] = &ZoneStats{
			Admitted:      pr.Admitted,
			Rejected:      pr.Rejected,
			Welfare:       pr.Welfare,
			Revenue:       pr.Revenue,
			VendorSpend:   pr.VendorSpend,
			EnergySpend:   pr.EnergySpend,
			RejectReasons: pr.RejectReasons,
		}
		res.TotalWelfare += pr.Welfare
	}
	return res, nil
}
