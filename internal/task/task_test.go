package task

import (
	"strings"
	"testing"

	"github.com/pdftsp/pdftsp/internal/timeslot"
)

func validTask() Task {
	return Task{
		ID: 1, Arrival: 2, Deadline: 10, DatasetSamples: 8000, Epochs: 3,
		Work: 24, MemGB: 4.5, Rank: 8, Batch: 16, Bid: 50, TrueValue: 50,
	}
}

func TestValidateAccepts(t *testing.T) {
	h := timeslot.NewHorizon(20)
	tk := validTask()
	if err := tk.Validate(h); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	h := timeslot.NewHorizon(20)
	mutations := []struct {
		name string
		mut  func(*Task)
	}{
		{"negative id", func(t *Task) { t.ID = -1 }},
		{"arrival outside horizon", func(t *Task) { t.Arrival = 20 }},
		{"negative arrival", func(t *Task) { t.Arrival = -1 }},
		{"deadline before arrival", func(t *Task) { t.Deadline = 1 }},
		{"zero work", func(t *Task) { t.Work = 0 }},
		{"zero memory", func(t *Task) { t.MemGB = 0 }},
		{"negative bid", func(t *Task) { t.Bid = -1 }},
		{"negative dataset", func(t *Task) { t.DatasetSamples = -1 }},
		{"negative epochs", func(t *Task) { t.Epochs = -1 }},
	}
	for _, m := range mutations {
		tk := validTask()
		m.mut(&tk)
		if err := tk.Validate(h); err == nil {
			t.Errorf("%s: not rejected", m.name)
		}
	}
}

func TestDeadlineTooTightIsStillValid(t *testing.T) {
	// A task that cannot possibly finish is a scheduling concern, not a
	// validation error: the paper's mechanism must be able to receive and
	// reject such bids.
	h := timeslot.NewHorizon(20)
	tk := validTask()
	tk.Deadline = tk.Arrival // single-slot window, 24 units of work
	if err := tk.Validate(h); err != nil {
		t.Fatalf("tight-deadline task rejected at validation: %v", err)
	}
}

func TestExecWindow(t *testing.T) {
	h := timeslot.NewHorizon(20)
	tk := validTask() // arrival 2, deadline 10
	w := tk.ExecWindow(h, 0)
	if w.Start != 2 || w.End != 10 {
		t.Fatalf("no-prep window = %v, want [2,10]", w)
	}
	w = tk.ExecWindow(h, 3)
	if w.Start != 5 || w.End != 10 {
		t.Fatalf("prep-delayed window = %v, want [5,10]", w)
	}
	// A vendor slower than the deadline empties the window.
	if w := tk.ExecWindow(h, 9); w.Len() != 0 {
		t.Fatalf("too-slow prep should empty the window, got %v", w)
	}
	// Deadline beyond the horizon clips.
	tk.Deadline = 50
	if w := tk.ExecWindow(h, 0); w.End != 19 {
		t.Fatalf("window should clip to horizon, got %v", w)
	}
}

func TestStringMentionsPrep(t *testing.T) {
	tk := validTask()
	if strings.Contains(tk.String(), "prep") {
		t.Fatal("non-prep task string mentions prep")
	}
	tk.NeedsPrep = true
	if !strings.Contains(tk.String(), "prep") {
		t.Fatal("prep task string lacks prep marker")
	}
}
