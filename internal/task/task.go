// Package task defines the fine-tuning task model of the paper:
// i = {a_i, d_i, D_i, r_i, M_i, f_i, b_i} (Section 2.1), extended with the
// LoRA hyperparameters (rank, batch size) from which the resource numbers
// are derived, and a separate true valuation for the auction experiments.
package task

import (
	"fmt"

	"github.com/pdftsp/pdftsp/internal/timeslot"
)

// Task is one LoRA fine-tuning request submitted as a bid.
type Task struct {
	// ID identifies the task; IDs are dense indices within a workload.
	ID int
	// Arrival is a_i, the zero-based slot at which the bid arrives.
	Arrival int
	// Deadline is d_i, the last slot (inclusive) at which the task may
	// still execute.
	Deadline int
	// DatasetSamples is |D_i|: training samples in the user's dataset.
	DatasetSamples int
	// Epochs is the number of passes over the dataset (Section 5.1:
	// "generated randomly between 1 and 5").
	Epochs int
	// Work is M_i in integer work units (1 unit = 1,000 samples); the
	// cumulative computation required to sufficiently fine-tune.
	Work int
	// MemGB is r_i: the GPU memory the task occupies while executing.
	MemGB float64
	// Rank is the LoRA rank of the task's adapters.
	Rank int
	// Batch is the per-device training batch size; it determines the
	// per-node throughput s_ik.
	Batch int
	// NeedsPrep is f_i: whether the dataset requires outsourced
	// pre-processing before fine-tuning can start.
	NeedsPrep bool
	// Bid is b_i: the declared willingness to pay.
	Bid float64
	// TrueValue is v_i: the private valuation. Truthful bidders have
	// TrueValue == Bid; the truthfulness experiment sweeps Bid while
	// holding TrueValue fixed.
	TrueValue float64
	// ModelName names the pre-trained model the task fine-tunes. The
	// paper scopes each problem instance to one shared model and notes
	// that "different zones within the cloud data center can be set up
	// for tasks fine-tuning different pre-trained models"; the zones
	// package routes on this field. Empty means the instance default.
	ModelName string
}

// Validate reports whether the task is internally consistent within the
// horizon. Infeasible-but-well-formed tasks (e.g., deadlines too tight to
// finish) are valid; schedulers are expected to reject them at bid time.
func (t *Task) Validate(h timeslot.Horizon) error {
	switch {
	case t.ID < 0:
		return fmt.Errorf("task %d: negative ID", t.ID)
	case !h.Contains(t.Arrival):
		return fmt.Errorf("task %d: arrival %d outside horizon [0,%d)", t.ID, t.Arrival, h.T)
	case t.Deadline < t.Arrival:
		return fmt.Errorf("task %d: deadline %d before arrival %d", t.ID, t.Deadline, t.Arrival)
	case t.Work <= 0:
		return fmt.Errorf("task %d: non-positive work %d", t.ID, t.Work)
	case t.MemGB <= 0:
		return fmt.Errorf("task %d: non-positive memory %v", t.ID, t.MemGB)
	case t.Bid < 0:
		return fmt.Errorf("task %d: negative bid %v", t.ID, t.Bid)
	case t.DatasetSamples < 0:
		return fmt.Errorf("task %d: negative dataset size %d", t.ID, t.DatasetSamples)
	case t.Epochs < 0:
		return fmt.Errorf("task %d: negative epochs %d", t.ID, t.Epochs)
	}
	return nil
}

// ExecWindow returns the slots in which the task may execute if its data
// pre-processing takes prepDelay slots: [a_i + prepDelay, d_i], clipped to
// the horizon. An empty window means the vendor is too slow (or the task
// infeasible).
func (t *Task) ExecWindow(h timeslot.Horizon, prepDelay int) timeslot.Window {
	w := timeslot.Window{Start: t.Arrival + prepDelay, End: t.Deadline}
	return w.ClipTo(h)
}

// String implements fmt.Stringer for debugging output.
func (t *Task) String() string {
	prep := ""
	if t.NeedsPrep {
		prep = " prep"
	}
	return fmt.Sprintf("task %d [a=%d d=%d M=%d r=%.1fGB bid=%.1f%s]",
		t.ID, t.Arrival, t.Deadline, t.Work, t.MemGB, t.Bid, prep)
}
