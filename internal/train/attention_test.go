package train

import (
	"math"
	"math/rand"
	"testing"

	"github.com/pdftsp/pdftsp/internal/tensor"
)

func newAttn(t *testing.T, nTasks int) *AttentionTrainer {
	t.Helper()
	at, err := NewAttentionTrainer(DefaultAttentionConfig(), nTasks, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	return at
}

func TestAttentionConfigValidate(t *testing.T) {
	if err := DefaultAttentionConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []AttentionConfig{
		{DModel: 0, SeqLen: 4, Rank: 2, Alpha: 4, LR: 0.1},
		{DModel: 8, SeqLen: 0, Rank: 2, Alpha: 4, LR: 0.1},
		{DModel: 8, SeqLen: 4, Rank: 0, Alpha: 4, LR: 0.1},
		{DModel: 8, SeqLen: 4, Rank: 9, Alpha: 4, LR: 0.1},
		{DModel: 8, SeqLen: 4, Rank: 2, Alpha: 0, LR: 0.1},
		{DModel: 8, SeqLen: 4, Rank: 2, Alpha: 4, LR: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad attention config %d validated", i)
		}
	}
	if _, err := NewAttentionTrainer(DefaultAttentionConfig(), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero tasks accepted")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := tensor.New(8, 6).Randn(rng, 1)
	k := tensor.New(8, 6).Randn(rng, 1)
	v := tensor.New(8, 6).Randn(rng, 1)
	_, p := attend(q, k, v)
	for i := 0; i < 6; i++ {
		sum := 0.0
		for j := 0; j < 6; j++ {
			pv := p.At(i, j)
			if pv < 0 || pv > 1 {
				t.Fatalf("attention weight %v outside [0,1]", pv)
			}
			sum += pv
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestAttentionUniformWhenScoresEqual(t *testing.T) {
	// Zero queries give equal scores → uniform attention → output is the
	// mean of the value vectors.
	q := tensor.New(4, 3) // zeros
	rng := rand.New(rand.NewSource(5))
	k := tensor.New(4, 3).Randn(rng, 1)
	v := tensor.New(4, 3).Randn(rng, 1)
	o, p := attend(q, k, v)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(p.At(i, j)-1.0/3.0) > 1e-9 {
				t.Fatalf("attention not uniform: %v", p.At(i, j))
			}
		}
	}
	for r := 0; r < 4; r++ {
		mean := (v.At(r, 0) + v.At(r, 1) + v.At(r, 2)) / 3
		if math.Abs(o.At(r, 0)-mean) > 1e-9 {
			t.Fatalf("output not the value mean: %v vs %v", o.At(r, 0), mean)
		}
	}
}

func TestAttentionFrozenProjections(t *testing.T) {
	at := newAttn(t, 2)
	at.Train(60)
	if !at.Frozen() {
		t.Fatal("training modified frozen attention projections")
	}
}

func TestAttentionLossDecreases(t *testing.T) {
	at := newAttn(t, 2)
	early, late := at.Train(400)
	for i := range early {
		if late[i] >= early[i]*0.7 {
			t.Errorf("task %d attention loss did not drop 30%%: %v -> %v", i, early[i], late[i])
		}
	}
}

func TestAttentionGradCheckThroughSoftmax(t *testing.T) {
	at := newAttn(t, 2)
	at.Train(5)
	for i := 0; i < at.NumTasks(); i++ {
		if rel := at.GradCheck(i, 1e-5); rel > 1e-3 {
			t.Errorf("task %d Bq gradient off by rel %v (softmax chain)", i, rel)
		}
	}
}

func TestAttentionDeterministic(t *testing.T) {
	run := func() []float64 {
		at, err := NewAttentionTrainer(DefaultAttentionConfig(), 2, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		_, late := at.Train(30)
		return late
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("attention training not deterministic")
		}
	}
}
