package train

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/pdftsp/pdftsp/internal/tensor"
)

// MLPConfig sizes the two-layer shared network: a frozen W2·gelu(W1·x)
// backbone with LoRA adapters on both layers. It is the smallest
// architecture that exercises backpropagation through a nonlinearity and
// multi-layer adapter composition — structurally what a transformer
// block's MLP does.
type MLPConfig struct {
	DIn, DHidden, DOut int
	Rank               int
	Alpha              float64
	LR                 float64
	Opt                OptimizerKind
}

// DefaultMLPConfig returns a small but non-degenerate network.
func DefaultMLPConfig() MLPConfig {
	return MLPConfig{DIn: 24, DHidden: 40, DOut: 16, Rank: 4, Alpha: 8, LR: 0.02, Opt: UseAdam}
}

// Validate reports configuration errors.
func (c MLPConfig) Validate() error {
	if c.DIn <= 0 || c.DHidden <= 0 || c.DOut <= 0 {
		return fmt.Errorf("train: non-positive MLP dims %d/%d/%d", c.DIn, c.DHidden, c.DOut)
	}
	if c.Rank <= 0 || c.Rank > c.DIn || c.Rank > c.DHidden {
		return fmt.Errorf("train: rank %d incompatible with dims", c.Rank)
	}
	if c.LR <= 0 || c.Alpha <= 0 {
		return fmt.Errorf("train: non-positive LR %v or alpha %v", c.LR, c.Alpha)
	}
	return nil
}

// mlpAdapter is one task's adapters for both layers plus optimizer state.
type mlpAdapter struct {
	A1, B1                     *tensor.Matrix // layer 1: B1·A1 augments W1
	A2, B2                     *tensor.Matrix // layer 2: B2·A2 augments W2
	optA1, optB1, optA2, optB2 Optimizer
}

// mlpTask holds one task's nonlinear ground truth: perturbed copies of
// both frozen layers.
type mlpTask struct {
	w1t, w2t *tensor.Matrix
	noise    float64
	rng      *rand.Rand
}

// MLPTrainer co-trains per-task LoRA adapters over a shared frozen
// two-layer network (multi-LoRA with depth).
type MLPTrainer struct {
	cfg      MLPConfig
	w1, w2   *tensor.Matrix // frozen
	w1c, w2c *tensor.Matrix // retained copies for frozenness checks
	adapters []*mlpAdapter
	tasks    []*mlpTask
}

// NewMLPTrainer builds the trainer with nTasks tasks; each task's targets
// come from the base network with small low-rank perturbations on both
// layers, so rank-r adapters can express the residual.
func NewMLPTrainer(cfg MLPConfig, nTasks int, rng *rand.Rand) (*MLPTrainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nTasks <= 0 {
		return nil, fmt.Errorf("train: need at least one task, got %d", nTasks)
	}
	w1 := tensor.New(cfg.DHidden, cfg.DIn).Randn(rng, math.Sqrt(2/float64(cfg.DIn)))
	w2 := tensor.New(cfg.DOut, cfg.DHidden).Randn(rng, math.Sqrt(2/float64(cfg.DHidden)))
	mt := &MLPTrainer{cfg: cfg, w1: w1, w2: w2, w1c: w1.Clone(), w2c: w2.Clone()}
	lowRank := func(rows, cols int, std float64) *tensor.Matrix {
		u := tensor.New(rows, cfg.Rank).Randn(rng, std)
		v := tensor.New(cfg.Rank, cols).Randn(rng, std)
		d := tensor.New(rows, cols)
		tensor.MatMul(d, u, v)
		return d
	}
	for i := 0; i < nTasks; i++ {
		mt.adapters = append(mt.adapters, &mlpAdapter{
			A1:    tensor.New(cfg.Rank, cfg.DIn).Randn(rng, 0.1),
			B1:    tensor.New(cfg.DHidden, cfg.Rank),
			A2:    tensor.New(cfg.Rank, cfg.DHidden).Randn(rng, 0.1),
			B2:    tensor.New(cfg.DOut, cfg.Rank),
			optA1: newOptimizer(cfg.Opt, cfg.LR),
			optB1: newOptimizer(cfg.Opt, cfg.LR),
			optA2: newOptimizer(cfg.Opt, cfg.LR),
			optB2: newOptimizer(cfg.Opt, cfg.LR),
		})
		w1t := w1.Clone()
		w1t.AddScaled(lowRank(cfg.DHidden, cfg.DIn, 0.25), 1)
		w2t := w2.Clone()
		w2t.AddScaled(lowRank(cfg.DOut, cfg.DHidden, 0.25), 1)
		mt.tasks = append(mt.tasks, &mlpTask{
			w1t: w1t, w2t: w2t, noise: 0.01,
			rng: rand.New(rand.NewSource(rng.Int63())),
		})
	}
	return mt, nil
}

// NumTasks returns the number of co-trained tasks.
func (mt *MLPTrainer) NumTasks() int { return len(mt.adapters) }

// Frozen reports whether both shared layers are bit-identical to their
// initial values.
func (mt *MLPTrainer) Frozen() bool {
	return mt.w1.Equalish(mt.w1c, 0) && mt.w2.Equalish(mt.w2c, 0)
}

// sample draws (x, y) with nonlinear targets y = W2t·gelu(W1t·x) + noise.
func (tk *mlpTask) sample(batch, dIn int) (x, y *tensor.Matrix) {
	x = tensor.New(dIn, batch).Randn(tk.rng, 1)
	z := tensor.New(tk.w1t.Rows, batch)
	tensor.MatMul(z, tk.w1t, x)
	h := tensor.New(z.Rows, z.Cols)
	geluMat(h, z)
	y = tensor.New(tk.w2t.Rows, batch)
	tensor.MatMul(y, tk.w2t, h)
	if tk.noise > 0 {
		n := tensor.New(y.Rows, y.Cols).Randn(tk.rng, tk.noise)
		y.AddScaled(n, 1)
	}
	return x, y
}

// forward computes the adapted network's activations for task i.
func (mt *MLPTrainer) forward(i int, x *tensor.Matrix) (z, h, y, a1x, a2h *tensor.Matrix) {
	ad := mt.adapters[i]
	cfg := mt.cfg
	scale := cfg.Alpha / float64(cfg.Rank)
	batch := x.Cols

	z = tensor.New(cfg.DHidden, batch)
	tensor.MatMul(z, mt.w1, x)
	a1x = tensor.New(cfg.Rank, batch)
	tensor.MatMul(a1x, ad.A1, x)
	b1a1x := tensor.New(cfg.DHidden, batch)
	tensor.MatMul(b1a1x, ad.B1, a1x)
	z.AddScaled(b1a1x, scale)

	h = tensor.New(cfg.DHidden, batch)
	geluMat(h, z)

	y = tensor.New(cfg.DOut, batch)
	tensor.MatMul(y, mt.w2, h)
	a2h = tensor.New(cfg.Rank, batch)
	tensor.MatMul(a2h, ad.A2, h)
	b2a2h := tensor.New(cfg.DOut, batch)
	tensor.MatMul(b2a2h, ad.B2, a2h)
	y.AddScaled(b2a2h, scale)
	return z, h, y, a1x, a2h
}

// Loss returns task i's MSE on a batch.
func (mt *MLPTrainer) Loss(i int, x, y *tensor.Matrix) float64 {
	_, _, pred, _, _ := mt.forward(i, x)
	return tensor.MSE(pred, y)
}

// Step runs one training step for every task and returns the pre-update
// losses.
func (mt *MLPTrainer) Step(batch int) []float64 {
	if batch <= 0 {
		panic(fmt.Sprintf("train: non-positive batch %d", batch))
	}
	cfg := mt.cfg
	scale := cfg.Alpha / float64(cfg.Rank)
	losses := make([]float64, len(mt.adapters))
	for i, ad := range mt.adapters {
		x, target := mt.tasks[i].sample(batch, cfg.DIn)
		z, h, y, a1x, a2h := mt.forward(i, x)
		losses[i] = tensor.MSE(y, target)

		// dL/dy.
		dy := tensor.New(cfg.DOut, batch)
		tensor.Sub(dy, y, target)
		dy.Scale(2 / float64(cfg.DOut*batch))

		// Layer-2 adapter gradients.
		gradB2 := tensor.New(cfg.DOut, cfg.Rank)
		tensor.MatMulTB(gradB2, dy, a2h)
		gradB2.Scale(scale)
		b2tdy := tensor.New(cfg.Rank, batch)
		tensor.MatMulTA(b2tdy, ad.B2, dy)
		gradA2 := tensor.New(cfg.Rank, cfg.DHidden)
		tensor.MatMulTB(gradA2, b2tdy, h)
		gradA2.Scale(scale)

		// dL/dh through both the frozen W2 and the adapter path.
		dh := tensor.New(cfg.DHidden, batch)
		tensor.MatMulTA(dh, mt.w2, dy)
		a2tb2tdy := tensor.New(cfg.DHidden, batch)
		tensor.MatMulTA(a2tb2tdy, ad.A2, b2tdy)
		dh.AddScaled(a2tb2tdy, scale)

		// Through the nonlinearity: dz = dh ⊙ gelu'(z).
		dz := tensor.New(cfg.DHidden, batch)
		for j, v := range z.Data {
			dz.Data[j] = dh.Data[j] * geluPrime(v)
		}

		// Layer-1 adapter gradients.
		gradB1 := tensor.New(cfg.DHidden, cfg.Rank)
		tensor.MatMulTB(gradB1, dz, a1x)
		gradB1.Scale(scale)
		b1tdz := tensor.New(cfg.Rank, batch)
		tensor.MatMulTA(b1tdz, ad.B1, dz)
		gradA1 := tensor.New(cfg.Rank, cfg.DIn)
		tensor.MatMulTB(gradA1, b1tdz, x)
		gradA1.Scale(scale)

		ad.optB2.Step(ad.B2, gradB2)
		ad.optA2.Step(ad.A2, gradA2)
		ad.optB1.Step(ad.B1, gradB1)
		ad.optA1.Step(ad.A1, gradA1)
	}
	return losses
}

// Train runs steps and returns mean early/late losses per task.
func (mt *MLPTrainer) Train(steps, batch int) (early, late []float64) {
	n := len(mt.adapters)
	early = make([]float64, n)
	late = make([]float64, n)
	q := steps / 4
	if q == 0 {
		q = 1
	}
	for s := 0; s < steps; s++ {
		losses := mt.Step(batch)
		for i, l := range losses {
			if s < q {
				early[i] += l / float64(q)
			}
			if s >= steps-q {
				late[i] += l / float64(q)
			}
		}
	}
	return early, late
}

// GradCheck compares the analytic layer-1 adapter gradient of task i
// against central finite differences (the layer-1 path exercises the full
// chain through the nonlinearity). Returns the max relative error.
func (mt *MLPTrainer) GradCheck(i, batch int, eps float64) float64 {
	cfg := mt.cfg
	scale := cfg.Alpha / float64(cfg.Rank)
	ad := mt.adapters[i]
	x, target := mt.tasks[i].sample(batch, cfg.DIn)

	z, _, y, a1x, _ := mt.forward(i, x)
	dy := tensor.New(cfg.DOut, batch)
	tensor.Sub(dy, y, target)
	dy.Scale(2 / float64(cfg.DOut*batch))
	dh := tensor.New(cfg.DHidden, batch)
	tensor.MatMulTA(dh, mt.w2, dy)
	b2tdy := tensor.New(cfg.Rank, batch)
	tensor.MatMulTA(b2tdy, ad.B2, dy)
	a2tb2tdy := tensor.New(cfg.DHidden, batch)
	tensor.MatMulTA(a2tb2tdy, ad.A2, b2tdy)
	dh.AddScaled(a2tb2tdy, scale)
	dz := tensor.New(cfg.DHidden, batch)
	for j, v := range z.Data {
		dz.Data[j] = dh.Data[j] * geluPrime(v)
	}
	gradB1 := tensor.New(cfg.DHidden, cfg.Rank)
	tensor.MatMulTB(gradB1, dz, a1x)
	gradB1.Scale(scale)

	maxRel := 0.0
	for idx := range ad.B1.Data {
		orig := ad.B1.Data[idx]
		ad.B1.Data[idx] = orig + eps
		lp := mt.Loss(i, x, target)
		ad.B1.Data[idx] = orig - eps
		lm := mt.Loss(i, x, target)
		ad.B1.Data[idx] = orig
		fd := (lp - lm) / (2 * eps)
		denom := 1e-8 + absf(fd) + absf(gradB1.Data[idx])
		if rel := absf(fd-gradB1.Data[idx]) / denom; rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel
}

// geluMat applies GELU element-wise.
func geluMat(dst, src *tensor.Matrix) {
	for i, v := range src.Data {
		dst.Data[i] = gelu(v)
	}
}

// gelu is the tanh-approximation GELU.
func gelu(x float64) float64 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
}

// geluPrime is its derivative.
func geluPrime(x float64) float64 {
	const c = 0.7978845608028654
	inner := c * (x + 0.044715*x*x*x)
	t := math.Tanh(inner)
	dinner := c * (1 + 3*0.044715*x*x)
	return 0.5*(1+t) + 0.5*x*(1-t*t)*dinner
}
