package train

import (
	"fmt"
	"math"

	"github.com/pdftsp/pdftsp/internal/tensor"
)

// Optimizer applies a gradient step to one parameter matrix. Each adapter
// matrix gets its own optimizer instance so state never crosses tasks.
type Optimizer interface {
	// Step updates param in place given its gradient.
	Step(param, grad *tensor.Matrix)
}

// SGD is plain stochastic gradient descent.
type SGD struct {
	LR float64
}

// Step implements Optimizer.
func (o *SGD) Step(param, grad *tensor.Matrix) {
	param.AddScaled(grad, -o.LR)
}

// Adam is the optimizer LoRA fine-tuning uses in practice; its first and
// second moment buffers are exactly the per-parameter optimizer state the
// memory model in internal/lora charges (16 bytes/param = weight + grad +
// m + v at fp32).
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t    int
	m, v *tensor.Matrix
}

// NewAdam returns Adam with the standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(param, grad *tensor.Matrix) {
	if o.m == nil {
		o.m = tensor.New(param.Rows, param.Cols)
		o.v = tensor.New(param.Rows, param.Cols)
	}
	if o.m.Rows != param.Rows || o.m.Cols != param.Cols {
		panic(fmt.Sprintf("train: Adam state %dx%d reused for %dx%d param",
			o.m.Rows, o.m.Cols, param.Rows, param.Cols))
	}
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i := range param.Data {
		g := grad.Data[i]
		o.m.Data[i] = o.Beta1*o.m.Data[i] + (1-o.Beta1)*g
		o.v.Data[i] = o.Beta2*o.v.Data[i] + (1-o.Beta2)*g*g
		mhat := o.m.Data[i] / c1
		vhat := o.v.Data[i] / c2
		param.Data[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
	}
}

// OptimizerKind selects the trainer's optimizer.
type OptimizerKind int

// Optimizer kinds.
const (
	UseSGD OptimizerKind = iota
	UseAdam
)

// newOptimizer builds a fresh optimizer for one parameter matrix.
func newOptimizer(kind OptimizerKind, lr float64) Optimizer {
	if kind == UseAdam {
		return NewAdam(lr)
	}
	return &SGD{LR: lr}
}
