package train

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/pdftsp/pdftsp/internal/tensor"
)

// AttentionConfig sizes a single-head self-attention layer with LoRA
// adapters on the query and value projections — exactly the placement of
// Figure 1 of the paper (and the LoRA paper's default).
type AttentionConfig struct {
	// DModel is the embedding width of Wq, Wk, Wv (all DModel×DModel).
	DModel int
	// SeqLen is the attention sequence length.
	SeqLen int
	// Rank, Alpha, LR, Opt follow the other trainers.
	Rank  int
	Alpha float64
	LR    float64
	Opt   OptimizerKind
}

// DefaultAttentionConfig returns a small but non-trivial layer.
func DefaultAttentionConfig() AttentionConfig {
	return AttentionConfig{DModel: 16, SeqLen: 8, Rank: 2, Alpha: 4, LR: 0.02, Opt: UseAdam}
}

// Validate reports configuration errors.
func (c AttentionConfig) Validate() error {
	if c.DModel <= 0 || c.SeqLen <= 0 {
		return fmt.Errorf("train: non-positive attention dims d=%d seq=%d", c.DModel, c.SeqLen)
	}
	if c.Rank <= 0 || c.Rank > c.DModel {
		return fmt.Errorf("train: rank %d outside (0,%d]", c.Rank, c.DModel)
	}
	if c.LR <= 0 || c.Alpha <= 0 {
		return fmt.Errorf("train: non-positive LR %v or alpha %v", c.LR, c.Alpha)
	}
	return nil
}

// attnAdapter is one task's LoRA pairs on Wq and Wv.
type attnAdapter struct {
	Aq, Bq, Av, Bv             *tensor.Matrix
	optAq, optBq, optAv, optBv Optimizer
}

// attnTask holds a task's ground truth: perturbed Wq/Wv used to generate
// targets through the same attention computation.
type attnTask struct {
	wqT, wvT *tensor.Matrix
	rng      *rand.Rand
}

// AttentionTrainer co-trains per-task q/v adapters over one frozen
// attention layer.
type AttentionTrainer struct {
	cfg           AttentionConfig
	wq, wk, wv    *tensor.Matrix // frozen projections
	wqC, wkC, wvC *tensor.Matrix // copies for frozenness checks
	adapters      []*attnAdapter
	tasks         []*attnTask
}

// NewAttentionTrainer builds the trainer.
func NewAttentionTrainer(cfg AttentionConfig, nTasks int, rng *rand.Rand) (*AttentionTrainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nTasks <= 0 {
		return nil, fmt.Errorf("train: need at least one task, got %d", nTasks)
	}
	std := 1 / math.Sqrt(float64(cfg.DModel))
	at := &AttentionTrainer{
		cfg: cfg,
		wq:  tensor.New(cfg.DModel, cfg.DModel).Randn(rng, std),
		wk:  tensor.New(cfg.DModel, cfg.DModel).Randn(rng, std),
		wv:  tensor.New(cfg.DModel, cfg.DModel).Randn(rng, std),
	}
	at.wqC, at.wkC, at.wvC = at.wq.Clone(), at.wk.Clone(), at.wv.Clone()
	lowRank := func(d int, s float64) *tensor.Matrix {
		u := tensor.New(d, cfg.Rank).Randn(rng, s)
		v := tensor.New(cfg.Rank, d).Randn(rng, s)
		out := tensor.New(d, d)
		tensor.MatMul(out, u, v)
		return out
	}
	for i := 0; i < nTasks; i++ {
		at.adapters = append(at.adapters, &attnAdapter{
			Aq:    tensor.New(cfg.Rank, cfg.DModel).Randn(rng, 0.1),
			Bq:    tensor.New(cfg.DModel, cfg.Rank),
			Av:    tensor.New(cfg.Rank, cfg.DModel).Randn(rng, 0.1),
			Bv:    tensor.New(cfg.DModel, cfg.Rank),
			optAq: newOptimizer(cfg.Opt, cfg.LR),
			optBq: newOptimizer(cfg.Opt, cfg.LR),
			optAv: newOptimizer(cfg.Opt, cfg.LR),
			optBv: newOptimizer(cfg.Opt, cfg.LR),
		})
		wqT := at.wq.Clone()
		wqT.AddScaled(lowRank(cfg.DModel, 0.2), 1)
		wvT := at.wv.Clone()
		wvT.AddScaled(lowRank(cfg.DModel, 0.2), 1)
		at.tasks = append(at.tasks, &attnTask{
			wqT: wqT, wvT: wvT,
			rng: rand.New(rand.NewSource(rng.Int63())),
		})
	}
	return at, nil
}

// NumTasks returns the number of co-trained tasks.
func (at *AttentionTrainer) NumTasks() int { return len(at.adapters) }

// Frozen reports whether all three frozen projections are untouched.
func (at *AttentionTrainer) Frozen() bool {
	return at.wq.Equalish(at.wqC, 0) && at.wk.Equalish(at.wkC, 0) && at.wv.Equalish(at.wvC, 0)
}

// attend computes softmax(QᵀK/√d) row-wise for X (DModel×Seq):
// Q = Wq'·X, K = Wk·X, V = Wv'·X; output O = V·Pᵀ where P[i][j] is the
// attention of position i over position j.
func attend(q, k, v *tensor.Matrix) (o, p *tensor.Matrix) {
	d := float64(q.Rows)
	seq := q.Cols
	// scores[i][j] = q_i · k_j / sqrt(d)
	scores := tensor.New(seq, seq)
	tensor.MatMulTA(scores, q, k)
	scores.Scale(1 / math.Sqrt(d))
	// Row-wise softmax.
	p = tensor.New(seq, seq)
	for i := 0; i < seq; i++ {
		row := scores.Data[i*seq : (i+1)*seq]
		m := row[0]
		for _, x := range row {
			if x > m {
				m = x
			}
		}
		sum := 0.0
		for j, x := range row {
			e := math.Exp(x - m)
			p.Data[i*seq+j] = e
			sum += e
		}
		for j := range row {
			p.Data[i*seq+j] /= sum
		}
	}
	// o[:,i] = Σ_j p[i][j] v[:,j]  ⇔  O = V·Pᵀ.
	o = tensor.New(v.Rows, seq)
	tensor.MatMulTB(o, v, p)
	return o, p
}

// forward runs the adapted attention for task i on input X (DModel×Seq).
func (at *AttentionTrainer) forward(i int, x *tensor.Matrix) (o, p, q, k, v *tensor.Matrix) {
	ad := at.adapters[i]
	cfg := at.cfg
	scale := cfg.Alpha / float64(cfg.Rank)
	proj := func(w, a, b *tensor.Matrix) *tensor.Matrix {
		out := tensor.New(cfg.DModel, x.Cols)
		tensor.MatMul(out, w, x)
		ax := tensor.New(cfg.Rank, x.Cols)
		tensor.MatMul(ax, a, x)
		bax := tensor.New(cfg.DModel, x.Cols)
		tensor.MatMul(bax, b, ax)
		out.AddScaled(bax, scale)
		return out
	}
	q = proj(at.wq, ad.Aq, ad.Bq)
	k = tensor.New(cfg.DModel, x.Cols)
	tensor.MatMul(k, at.wk, x)
	v = proj(at.wv, ad.Av, ad.Bv)
	o, p = attend(q, k, v)
	return o, p, q, k, v
}

// Loss returns task i's MSE against the target attention output.
func (at *AttentionTrainer) Loss(i int, x, target *tensor.Matrix) float64 {
	o, _, _, _, _ := at.forward(i, x)
	return tensor.MSE(o, target)
}

// sample draws (x, target) where the target runs the task's perturbed
// q/v projections through the same attention.
func (at *AttentionTrainer) sample(i int) (x, target *tensor.Matrix) {
	cfg := at.cfg
	tk := at.tasks[i]
	x = tensor.New(cfg.DModel, cfg.SeqLen).Randn(tk.rng, 1)
	q := tensor.New(cfg.DModel, cfg.SeqLen)
	tensor.MatMul(q, tk.wqT, x)
	k := tensor.New(cfg.DModel, cfg.SeqLen)
	tensor.MatMul(k, at.wk, x)
	v := tensor.New(cfg.DModel, cfg.SeqLen)
	tensor.MatMul(v, tk.wvT, x)
	target, _ = attend(q, k, v)
	return x, target
}

// Step trains every task on a fresh sequence via numerically robust
// central-difference gradients on the adapter parameters.
//
// Analytic backprop through softmax attention is implemented for the
// value path (exact); the query path flows through the softmax Jacobian,
// where we use the standard result dscores = P ⊙ (dP − rowsum(dP⊙P)).
func (at *AttentionTrainer) Step() []float64 {
	cfg := at.cfg
	scale := cfg.Alpha / float64(cfg.Rank)
	losses := make([]float64, len(at.adapters))
	for i, ad := range at.adapters {
		x, target := at.sample(i)
		o, p, _, k, _ := at.forward(i, x)
		losses[i] = tensor.MSE(o, target)
		seq := cfg.SeqLen

		// dL/dO.
		do := tensor.New(cfg.DModel, seq)
		tensor.Sub(do, o, target)
		do.Scale(2 / float64(cfg.DModel*seq))

		// Value path: O = V·Pᵀ ⇒ dV = dO·P, dPᵀ = Vᵀ·dO ⇒ dP = dOᵀ·V.
		dv := tensor.New(cfg.DModel, seq)
		tensor.MatMul(dv, do, p)
		dp := tensor.New(seq, seq)
		tensor.MatMulTA(dp, do, at.vFor(i, x))

		// Softmax backward: ds = P ⊙ (dP − rowsum(dP⊙P)).
		ds := tensor.New(seq, seq)
		for r := 0; r < seq; r++ {
			dot := 0.0
			for c := 0; c < seq; c++ {
				dot += dp.Data[r*seq+c] * p.Data[r*seq+c]
			}
			for c := 0; c < seq; c++ {
				ds.Data[r*seq+c] = p.Data[r*seq+c] * (dp.Data[r*seq+c] - dot)
			}
		}
		ds.Scale(1 / math.Sqrt(float64(cfg.DModel)))

		// Query path: scores = QᵀK/√d ⇒ dQ = K·dsᵀ.
		dq := tensor.New(cfg.DModel, seq)
		tensor.MatMulTB(dq, k, ds)

		// Adapter gradients: for Y = W·X + s·B·(A·X),
		// gradB = s·dY·(A·X)ᵀ, gradA = s·Bᵀ·dY·Xᵀ.
		adapterGrads := func(dy, a, b *tensor.Matrix) (gradA, gradB *tensor.Matrix) {
			ax := tensor.New(cfg.Rank, seq)
			tensor.MatMul(ax, a, x)
			gradB = tensor.New(cfg.DModel, cfg.Rank)
			tensor.MatMulTB(gradB, dy, ax)
			gradB.Scale(scale)
			btdy := tensor.New(cfg.Rank, seq)
			tensor.MatMulTA(btdy, b, dy)
			gradA = tensor.New(cfg.Rank, cfg.DModel)
			tensor.MatMulTB(gradA, btdy, x)
			gradA.Scale(scale)
			return gradA, gradB
		}
		gradAq, gradBq := adapterGrads(dq, ad.Aq, ad.Bq)
		gradAv, gradBv := adapterGrads(dv, ad.Av, ad.Bv)

		ad.optBq.Step(ad.Bq, gradBq)
		ad.optAq.Step(ad.Aq, gradAq)
		ad.optBv.Step(ad.Bv, gradBv)
		ad.optAv.Step(ad.Av, gradAv)
	}
	return losses
}

// vFor recomputes the adapted value projection (used by the backward
// pass, which needs V after the forward's buffers are gone).
func (at *AttentionTrainer) vFor(i int, x *tensor.Matrix) *tensor.Matrix {
	ad := at.adapters[i]
	cfg := at.cfg
	scale := cfg.Alpha / float64(cfg.Rank)
	out := tensor.New(cfg.DModel, x.Cols)
	tensor.MatMul(out, at.wv, x)
	ax := tensor.New(cfg.Rank, x.Cols)
	tensor.MatMul(ax, ad.Av, x)
	bax := tensor.New(cfg.DModel, x.Cols)
	tensor.MatMul(bax, ad.Bv, ax)
	out.AddScaled(bax, scale)
	return out
}

// Train runs steps and returns mean early/late losses per task.
func (at *AttentionTrainer) Train(steps int) (early, late []float64) {
	n := len(at.adapters)
	early = make([]float64, n)
	late = make([]float64, n)
	q := steps / 4
	if q == 0 {
		q = 1
	}
	for s := 0; s < steps; s++ {
		losses := at.Step()
		for i, l := range losses {
			if s < q {
				early[i] += l / float64(q)
			}
			if s >= steps-q {
				late[i] += l / float64(q)
			}
		}
	}
	return early, late
}

// GradCheck verifies the analytic Bq gradient (the full chain through the
// softmax) against central finite differences on a fixed sample.
func (at *AttentionTrainer) GradCheck(i int, eps float64) float64 {
	cfg := at.cfg
	scale := cfg.Alpha / float64(cfg.Rank)
	ad := at.adapters[i]
	x, target := at.sample(i)
	seq := cfg.SeqLen

	o, p, _, k, _ := at.forward(i, x)
	do := tensor.New(cfg.DModel, seq)
	tensor.Sub(do, o, target)
	do.Scale(2 / float64(cfg.DModel*seq))
	dp := tensor.New(seq, seq)
	tensor.MatMulTA(dp, do, at.vFor(i, x))
	ds := tensor.New(seq, seq)
	for r := 0; r < seq; r++ {
		dot := 0.0
		for c := 0; c < seq; c++ {
			dot += dp.Data[r*seq+c] * p.Data[r*seq+c]
		}
		for c := 0; c < seq; c++ {
			ds.Data[r*seq+c] = p.Data[r*seq+c] * (dp.Data[r*seq+c] - dot)
		}
	}
	ds.Scale(1 / math.Sqrt(float64(cfg.DModel)))
	dq := tensor.New(cfg.DModel, seq)
	tensor.MatMulTB(dq, k, ds)
	ax := tensor.New(cfg.Rank, seq)
	tensor.MatMul(ax, ad.Aq, x)
	gradBq := tensor.New(cfg.DModel, cfg.Rank)
	tensor.MatMulTB(gradBq, dq, ax)
	gradBq.Scale(scale)

	maxRel := 0.0
	for idx := range ad.Bq.Data {
		orig := ad.Bq.Data[idx]
		ad.Bq.Data[idx] = orig + eps
		lp := at.Loss(i, x, target)
		ad.Bq.Data[idx] = orig - eps
		lm := at.Loss(i, x, target)
		ad.Bq.Data[idx] = orig
		fd := (lp - lm) / (2 * eps)
		denom := 1e-8 + absf(fd) + absf(gradBq.Data[idx])
		if rel := absf(fd-gradBq.Data[idx]) / denom; rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel
}
