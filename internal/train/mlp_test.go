package train

import (
	"math"
	"math/rand"
	"testing"
)

func newMLP(t *testing.T, nTasks int) *MLPTrainer {
	t.Helper()
	mt, err := NewMLPTrainer(DefaultMLPConfig(), nTasks, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	return mt
}

func TestMLPConfigValidate(t *testing.T) {
	if err := DefaultMLPConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MLPConfig{
		{DIn: 0, DHidden: 8, DOut: 4, Rank: 2, Alpha: 8, LR: 0.1},
		{DIn: 8, DHidden: 8, DOut: 4, Rank: 0, Alpha: 8, LR: 0.1},
		{DIn: 8, DHidden: 8, DOut: 4, Rank: 16, Alpha: 8, LR: 0.1},
		{DIn: 8, DHidden: 8, DOut: 4, Rank: 2, Alpha: 0, LR: 0.1},
		{DIn: 8, DHidden: 8, DOut: 4, Rank: 2, Alpha: 8, LR: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad MLP config %d validated", i)
		}
	}
	if _, err := NewMLPTrainer(DefaultMLPConfig(), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero tasks accepted")
	}
}

func TestMLPBothLayersStayFrozen(t *testing.T) {
	mt := newMLP(t, 2)
	mt.Train(80, 8)
	if !mt.Frozen() {
		t.Fatal("training modified a shared frozen layer")
	}
}

func TestMLPLossDecreases(t *testing.T) {
	mt := newMLP(t, 3)
	early, late := mt.Train(400, 16)
	for i := range early {
		if late[i] >= early[i]*0.7 {
			t.Errorf("task %d MLP loss did not drop 30%%: %v -> %v", i, early[i], late[i])
		}
	}
}

func TestMLPGradCheckThroughNonlinearity(t *testing.T) {
	mt := newMLP(t, 2)
	mt.Train(5, 8) // move adapters off their zero init
	for i := 0; i < mt.NumTasks(); i++ {
		if rel := mt.GradCheck(i, 6, 1e-5); rel > 5e-4 {
			t.Errorf("task %d layer-1 gradient off by rel %v", i, rel)
		}
	}
}

func TestMLPStepPanicsOnBadBatch(t *testing.T) {
	mt := newMLP(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Step(0) did not panic")
		}
	}()
	mt.Step(0)
}

func TestGeluProperties(t *testing.T) {
	// gelu(0) = 0; gelu(x) → x for large x; gelu(x) → 0 for very
	// negative x; derivative matches finite differences.
	if gelu(0) != 0 {
		t.Fatalf("gelu(0) = %v", gelu(0))
	}
	if math.Abs(gelu(10)-10) > 1e-6 {
		t.Fatalf("gelu(10) = %v, want ~10", gelu(10))
	}
	if math.Abs(gelu(-10)) > 1e-6 {
		t.Fatalf("gelu(-10) = %v, want ~0", gelu(-10))
	}
	for _, x := range []float64{-3, -1, -0.2, 0.3, 1.7, 4} {
		const eps = 1e-6
		fd := (gelu(x+eps) - gelu(x-eps)) / (2 * eps)
		if math.Abs(fd-geluPrime(x)) > 1e-6 {
			t.Fatalf("geluPrime(%v) = %v, finite diff %v", x, geluPrime(x), fd)
		}
	}
}

func TestMLPDeterministicPerSeed(t *testing.T) {
	run := func() []float64 {
		mt, err := NewMLPTrainer(DefaultMLPConfig(), 2, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		_, late := mt.Train(30, 8)
		return late
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MLP training not deterministic")
		}
	}
}

func BenchmarkMLPStep(b *testing.B) {
	mt, err := NewMLPTrainer(DefaultMLPConfig(), 4, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.Step(16)
	}
}
