package train

import (
	"math/rand"
	"testing"
)

func newTrainer(t *testing.T, nTasks int) *MultiTrainer {
	t.Helper()
	mt, err := NewMultiTrainer(DefaultConfig(), nTasks, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("NewMultiTrainer: %v", err)
	}
	return mt
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{DIn: 0, DOut: 8, Rank: 2, Alpha: 8, LR: 0.1},
		{DIn: 8, DOut: 8, Rank: 0, Alpha: 8, LR: 0.1},
		{DIn: 8, DOut: 8, Rank: 16, Alpha: 8, LR: 0.1},
		{DIn: 8, DOut: 8, Rank: 2, Alpha: 0, LR: 0.1},
		{DIn: 8, DOut: 8, Rank: 2, Alpha: 8, LR: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestNewMultiTrainerRejectsZeroTasks(t *testing.T) {
	if _, err := NewMultiTrainer(DefaultConfig(), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero tasks accepted")
	}
}

func TestW0StaysFrozenThroughTraining(t *testing.T) {
	mt := newTrainer(t, 3)
	mt.Train(50, 8)
	if !mt.W0Frozen() {
		t.Fatal("training modified the shared base weights W0")
	}
}

func TestLossDecreasesForEveryTask(t *testing.T) {
	mt := newTrainer(t, 3)
	early, late := mt.Train(300, 16)
	for i := range early {
		if late[i] >= early[i]*0.5 {
			t.Errorf("task %d loss did not halve: early %v late %v", i, early[i], late[i])
		}
	}
}

func TestAdaptersDiverge(t *testing.T) {
	mt := newTrainer(t, 2)
	mt.Train(200, 16)
	a0, a1 := mt.Adapter(0), mt.Adapter(1)
	diffB := a0.B.Clone()
	diffB.AddScaled(a1.B, -1)
	if diffB.Frobenius() < 1e-6 {
		t.Fatal("adapters of different tasks did not diverge")
	}
	// And each adapter moved away from its zero-initialized B.
	if a0.B.Frobenius() < 1e-6 || a1.B.Frobenius() < 1e-6 {
		t.Fatal("adapters did not train")
	}
}

func TestSharedForwardBatchesAllTasks(t *testing.T) {
	mt := newTrainer(t, 4)
	res := mt.Step(8)
	if res.SharedForwardCols != 32 {
		t.Fatalf("shared forward covered %d columns, want 32", res.SharedForwardCols)
	}
	if len(res.Losses) != 4 {
		t.Fatalf("got %d losses, want 4", len(res.Losses))
	}
	for i, l := range res.Losses {
		if l <= 0 {
			t.Errorf("task %d initial loss %v not positive", i, l)
		}
	}
}

func TestStepPanicsOnBadBatch(t *testing.T) {
	mt := newTrainer(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Step(0) did not panic")
		}
	}()
	mt.Step(0)
}

func TestGradCheck(t *testing.T) {
	mt := newTrainer(t, 2)
	// Move adapters off their zero init so gradA is non-trivial.
	mt.Train(5, 8)
	for i := 0; i < mt.NumTasks(); i++ {
		if rel := mt.GradCheck(i, 8, 1e-5); rel > 1e-4 {
			t.Errorf("task %d analytic gradient off by rel %v", i, rel)
		}
	}
}

func TestZeroInitBGivesBaseForward(t *testing.T) {
	// With B = 0, the adapter contributes nothing: h must equal W0·x.
	cfg := DefaultConfig()
	mt, err := NewMultiTrainer(cfg, 1, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := mt.data[0].Sample(4, cfg.DIn)
	h := mt.Forward(0, x)
	want := mt.Forward(0, x) // deterministic
	if !h.Equalish(want, 0) {
		t.Fatal("forward not deterministic")
	}
	// Perturb A heavily; with B still zero the output must not change.
	mt.Adapter(0).A.Scale(100)
	h2 := mt.Forward(0, x)
	if !h.Equalish(h2, 1e-12) {
		t.Fatal("B=0 adapter changed the forward output")
	}
}

func TestTrainDeterministicForSeed(t *testing.T) {
	run := func() []float64 {
		mt, err := NewMultiTrainer(DefaultConfig(), 2, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		_, late := mt.Train(40, 8)
		return late
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training not deterministic: %v vs %v", a, b)
		}
	}
}

func BenchmarkMultiLoRAStep(b *testing.B) {
	mt, err := NewMultiTrainer(DefaultConfig(), 8, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mt.Step(16)
	}
}
