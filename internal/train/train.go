// Package train implements an executable multi-LoRA trainer: several
// fine-tuning tasks share one frozen base weight matrix W0 and each task
// trains only its own low-rank adapter ΔW = B·A (Figures 1 and 2 of the
// paper). The trainer really runs forward/backward passes and SGD updates
// on internal/tensor matrices, at a reduced scale, which proves the
// weight-sharing code path the scheduler's memory model assumes.
//
// The model is a single dense layer h = W0·x + (α/r)·B·(A·x); each task's
// synthetic dataset is drawn from its own ground-truth linear map, so the
// adapters must diverge from each other while W0 stays frozen.
package train

import (
	"fmt"
	"math/rand"

	"github.com/pdftsp/pdftsp/internal/tensor"
)

// Config sizes the shared layer.
type Config struct {
	// DIn and DOut are the layer input/output widths.
	DIn, DOut int
	// Rank is the LoRA rank r (shared by all tasks for simplicity).
	Rank int
	// Alpha is the LoRA scaling numerator; the effective scale is Alpha/Rank.
	Alpha float64
	// LR is the learning rate applied to adapters.
	LR float64
	// Opt selects the optimizer (UseSGD default, UseAdam for the
	// production-realistic choice whose state the memory model charges).
	Opt OptimizerKind
}

// DefaultConfig returns a small but non-trivial layer.
func DefaultConfig() Config {
	return Config{DIn: 32, DOut: 24, Rank: 4, Alpha: 8, LR: 0.05}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DIn <= 0 || c.DOut <= 0 {
		return fmt.Errorf("train: non-positive layer dims %dx%d", c.DOut, c.DIn)
	}
	if c.Rank <= 0 || c.Rank > c.DIn || c.Rank > c.DOut {
		return fmt.Errorf("train: rank %d outside (0, min(%d,%d)]", c.Rank, c.DIn, c.DOut)
	}
	if c.LR <= 0 {
		return fmt.Errorf("train: non-positive learning rate %v", c.LR)
	}
	if c.Alpha <= 0 {
		return fmt.Errorf("train: non-positive alpha %v", c.Alpha)
	}
	return nil
}

// Adapter holds one task's trainable LoRA matrices and their optimizer
// state.
type Adapter struct {
	// A is r×DIn, initialized N(0, σ²) per the LoRA paper.
	A *tensor.Matrix
	// B is DOut×r, initialized to zero per the LoRA paper, so the
	// adapter starts as the identity update ΔW = 0.
	B *tensor.Matrix

	optA, optB Optimizer
}

// TaskData is one task's synthetic regression stream: targets come from a
// hidden ground-truth map y = Wtrue·x plus noise.
type TaskData struct {
	Wtrue *tensor.Matrix
	Noise float64
	rng   *rand.Rand
}

// Sample draws a batch of (x, y) with x ~ N(0,1).
func (d *TaskData) Sample(batch, dIn int) (x, y *tensor.Matrix) {
	x = tensor.New(dIn, batch).Randn(d.rng, 1)
	y = tensor.New(d.Wtrue.Rows, batch)
	tensor.MatMul(y, d.Wtrue, x)
	if d.Noise > 0 {
		n := tensor.New(y.Rows, y.Cols).Randn(d.rng, d.Noise)
		y.AddScaled(n, 1)
	}
	return x, y
}

// MultiTrainer trains several adapters against one shared frozen W0.
type MultiTrainer struct {
	cfg      Config
	w0       *tensor.Matrix
	w0Copy   *tensor.Matrix // retained to assert frozenness
	adapters []*Adapter
	data     []*TaskData
}

// NewMultiTrainer builds a trainer with nTasks tasks. Each task receives
// its own ground-truth target map, so adapters must learn different
// updates while sharing W0.
func NewMultiTrainer(cfg Config, nTasks int, rng *rand.Rand) (*MultiTrainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nTasks <= 0 {
		return nil, fmt.Errorf("train: need at least one task, got %d", nTasks)
	}
	w0 := tensor.New(cfg.DOut, cfg.DIn).Randn(rng, 0.3)
	mt := &MultiTrainer{cfg: cfg, w0: w0, w0Copy: w0.Clone()}
	for i := 0; i < nTasks; i++ {
		ad := &Adapter{
			A:    tensor.New(cfg.Rank, cfg.DIn).Randn(rng, 0.1),
			B:    tensor.New(cfg.DOut, cfg.Rank), // zeros
			optA: newOptimizer(cfg.Opt, cfg.LR),
			optB: newOptimizer(cfg.Opt, cfg.LR),
		}
		// Ground truth = base plus a task-specific low-rank-ish delta,
		// so a rank-r adapter can actually fit it.
		delta := tensor.New(cfg.DOut, cfg.DIn)
		u := tensor.New(cfg.DOut, cfg.Rank).Randn(rng, 0.5)
		v := tensor.New(cfg.Rank, cfg.DIn).Randn(rng, 0.5)
		tensor.MatMul(delta, u, v)
		wTrue := w0.Clone()
		wTrue.AddScaled(delta, 1)
		mt.adapters = append(mt.adapters, ad)
		mt.data = append(mt.data, &TaskData{
			Wtrue: wTrue,
			Noise: 0.01,
			rng:   rand.New(rand.NewSource(rng.Int63())),
		})
	}
	return mt, nil
}

// NumTasks returns the number of co-trained tasks.
func (mt *MultiTrainer) NumTasks() int { return len(mt.adapters) }

// Adapter returns task i's adapter (for inspection in tests).
func (mt *MultiTrainer) Adapter(i int) *Adapter { return mt.adapters[i] }

// W0Frozen reports whether the shared base weights are bit-identical to
// their initial value — the central multi-LoRA invariant.
func (mt *MultiTrainer) W0Frozen() bool { return mt.w0.Equalish(mt.w0Copy, 0) }

// Forward computes h = W0·x + (α/r)·B·(A·x) for task i.
func (mt *MultiTrainer) Forward(i int, x *tensor.Matrix) *tensor.Matrix {
	ad := mt.adapters[i]
	h := tensor.New(mt.cfg.DOut, x.Cols)
	tensor.MatMul(h, mt.w0, x)
	ax := tensor.New(mt.cfg.Rank, x.Cols)
	tensor.MatMul(ax, ad.A, x)
	bax := tensor.New(mt.cfg.DOut, x.Cols)
	tensor.MatMul(bax, ad.B, ax)
	h.AddScaled(bax, mt.cfg.Alpha/float64(mt.cfg.Rank))
	return h
}

// Loss returns the MSE loss of task i on batch (x, y).
func (mt *MultiTrainer) Loss(i int, x, y *tensor.Matrix) float64 {
	return tensor.MSE(mt.Forward(i, x), y)
}

// StepResult reports one batched multi-LoRA step.
type StepResult struct {
	// Losses holds each task's pre-update batch loss.
	Losses []float64
	// SharedForwardCols is the width of the single batched W0 matmul that
	// served every task — the multi-LoRA sharing at work.
	SharedForwardCols int
}

// Step runs one batched multi-LoRA training step: every task contributes a
// batch, the shared W0 forward runs once over the concatenation (Figure 2),
// then each task's adapter path and gradients are computed per task, and
// SGD updates only the adapters.
func (mt *MultiTrainer) Step(batch int) StepResult {
	if batch <= 0 {
		panic(fmt.Sprintf("train: non-positive batch %d", batch))
	}
	n := len(mt.adapters)
	xs := make([]*tensor.Matrix, n)
	ys := make([]*tensor.Matrix, n)
	// Concatenate all task batches column-wise: X = [x_1 | x_2 | ... ].
	bigX := tensor.New(mt.cfg.DIn, batch*n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = mt.data[i].Sample(batch, mt.cfg.DIn)
		for r := 0; r < mt.cfg.DIn; r++ {
			copy(bigX.Data[r*bigX.Cols+i*batch:r*bigX.Cols+(i+1)*batch],
				xs[i].Data[r*batch:(r+1)*batch])
		}
	}
	// One shared base forward for every co-located task.
	bigH0 := tensor.New(mt.cfg.DOut, batch*n)
	tensor.MatMul(bigH0, mt.w0, bigX)

	res := StepResult{Losses: make([]float64, n), SharedForwardCols: batch * n}
	scale := mt.cfg.Alpha / float64(mt.cfg.Rank)
	for i := 0; i < n; i++ {
		ad := mt.adapters[i]
		// Slice task i's columns out of the shared forward result.
		h := tensor.New(mt.cfg.DOut, batch)
		for r := 0; r < mt.cfg.DOut; r++ {
			copy(h.Data[r*batch:(r+1)*batch],
				bigH0.Data[r*bigH0.Cols+i*batch:r*bigH0.Cols+(i+1)*batch])
		}
		ax := tensor.New(mt.cfg.Rank, batch)
		tensor.MatMul(ax, ad.A, xs[i])
		bax := tensor.New(mt.cfg.DOut, batch)
		tensor.MatMul(bax, ad.B, ax)
		h.AddScaled(bax, scale)

		// MSE loss and gradient dL/dh = 2(h-y)/(DOut*batch).
		res.Losses[i] = tensor.MSE(h, ys[i])
		dh := tensor.New(mt.cfg.DOut, batch)
		tensor.Sub(dh, h, ys[i])
		dh.Scale(2 / float64(mt.cfg.DOut*batch))

		// Backward through the adapter path only; W0 is frozen.
		//   gradB = scale · dh · (A·x)ᵀ
		//   gradA = scale · Bᵀ · dh · xᵀ
		gradB := tensor.New(mt.cfg.DOut, mt.cfg.Rank)
		tensor.MatMulTB(gradB, dh, ax)
		gradB.Scale(scale)
		btdh := tensor.New(mt.cfg.Rank, batch)
		tensor.MatMulTA(btdh, ad.B, dh)
		gradA := tensor.New(mt.cfg.Rank, mt.cfg.DIn)
		tensor.MatMulTB(gradA, btdh, xs[i])
		gradA.Scale(scale)

		ad.optB.Step(ad.B, gradB)
		ad.optA.Step(ad.A, gradA)
	}
	return res
}

// Train runs steps batched multi-LoRA steps and returns each task's mean
// loss over the first and last quarter of training, for convergence
// assertions.
func (mt *MultiTrainer) Train(steps, batch int) (early, late []float64) {
	n := len(mt.adapters)
	early = make([]float64, n)
	late = make([]float64, n)
	q := steps / 4
	if q == 0 {
		q = 1
	}
	for s := 0; s < steps; s++ {
		res := mt.Step(batch)
		for i, l := range res.Losses {
			if s < q {
				early[i] += l / float64(q)
			}
			if s >= steps-q {
				late[i] += l / float64(q)
			}
		}
	}
	return early, late
}

// GradCheck compares the analytic adapter gradients of task i against
// central finite differences on a fixed batch, returning the maximum
// relative error. Tests use it to certify the backward pass.
func (mt *MultiTrainer) GradCheck(i, batch int, eps float64) float64 {
	x, y := mt.data[i].Sample(batch, mt.cfg.DIn)
	ad := mt.adapters[i]
	scale := mt.cfg.Alpha / float64(mt.cfg.Rank)

	// Analytic gradients (same math as Step).
	h := mt.Forward(i, x)
	dh := tensor.New(mt.cfg.DOut, batch)
	tensor.Sub(dh, h, y)
	dh.Scale(2 / float64(mt.cfg.DOut*batch))
	ax := tensor.New(mt.cfg.Rank, batch)
	tensor.MatMul(ax, ad.A, x)
	gradB := tensor.New(mt.cfg.DOut, mt.cfg.Rank)
	tensor.MatMulTB(gradB, dh, ax)
	gradB.Scale(scale)
	btdh := tensor.New(mt.cfg.Rank, batch)
	tensor.MatMulTA(btdh, ad.B, dh)
	gradA := tensor.New(mt.cfg.Rank, mt.cfg.DIn)
	tensor.MatMulTB(gradA, btdh, x)
	gradA.Scale(scale)

	maxRel := 0.0
	check := func(param *tensor.Matrix, grad *tensor.Matrix) {
		for idx := range param.Data {
			orig := param.Data[idx]
			param.Data[idx] = orig + eps
			lp := mt.Loss(i, x, y)
			param.Data[idx] = orig - eps
			lm := mt.Loss(i, x, y)
			param.Data[idx] = orig
			fd := (lp - lm) / (2 * eps)
			denom := 1e-8 + absf(fd) + absf(grad.Data[idx])
			rel := absf(fd-grad.Data[idx]) / denom
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	check(ad.B, gradB)
	check(ad.A, gradA)
	return maxRel
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
