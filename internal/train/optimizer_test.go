package train

import (
	"math"
	"math/rand"
	"testing"

	"github.com/pdftsp/pdftsp/internal/tensor"
)

func TestSGDStep(t *testing.T) {
	p := tensor.FromSlice(1, 2, []float64{1, 2})
	g := tensor.FromSlice(1, 2, []float64{0.5, -0.5})
	(&SGD{LR: 0.1}).Step(p, g)
	if math.Abs(p.Data[0]-0.95) > 1e-12 || math.Abs(p.Data[1]-2.05) > 1e-12 {
		t.Fatalf("SGD step wrong: %v", p.Data)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = ||x - target||² with gradients 2(x-target).
	target := tensor.FromSlice(1, 3, []float64{1, -2, 3})
	x := tensor.New(1, 3)
	opt := NewAdam(0.1)
	g := tensor.New(1, 3)
	for i := 0; i < 500; i++ {
		tensor.Sub(g, x, target)
		g.Scale(2)
		opt.Step(x, g)
	}
	if !x.Equalish(target, 1e-3) {
		t.Fatalf("Adam did not converge: %v", x.Data)
	}
}

func TestAdamFasterThanSGDOnIllConditioned(t *testing.T) {
	// f(x) = 100 x0² + x1²: plain SGD with a safe LR crawls on x1; Adam's
	// per-coordinate scaling does not.
	run := func(opt Optimizer) float64 {
		x := tensor.FromSlice(1, 2, []float64{1, 1})
		g := tensor.New(1, 2)
		for i := 0; i < 200; i++ {
			g.Data[0] = 200 * x.Data[0]
			g.Data[1] = 2 * x.Data[1]
			opt.Step(x, g)
		}
		return 100*x.Data[0]*x.Data[0] + x.Data[1]*x.Data[1]
	}
	sgd := run(&SGD{LR: 0.004}) // max stable LR ~ 2/200
	adam := run(NewAdam(0.05))
	if adam >= sgd {
		t.Fatalf("Adam (%v) not better than SGD (%v) on ill-conditioned quadratic", adam, sgd)
	}
}

func TestAdamStateShapePanic(t *testing.T) {
	opt := NewAdam(0.1)
	p := tensor.New(2, 2)
	opt.Step(p, tensor.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("shape-changing Adam reuse did not panic")
		}
	}()
	opt.Step(tensor.New(3, 3), tensor.New(3, 3))
}

func TestMultiTrainerWithAdam(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Opt = UseAdam
	cfg.LR = 0.01
	mt, err := NewMultiTrainer(cfg, 2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	early, late := mt.Train(300, 16)
	for i := range early {
		if late[i] >= early[i]*0.5 {
			t.Errorf("task %d under Adam did not halve loss: %v -> %v", i, early[i], late[i])
		}
	}
	if !mt.W0Frozen() {
		t.Fatal("Adam training moved frozen base weights")
	}
}

func TestOptimizerStatePerAdapter(t *testing.T) {
	// Each adapter matrix owns its optimizer: the Adam moments of one
	// task must not leak into another.
	cfg := DefaultConfig()
	cfg.Opt = UseAdam
	mt, err := NewMultiTrainer(cfg, 2, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	a0 := mt.Adapter(0).optA.(*Adam)
	a1 := mt.Adapter(1).optA.(*Adam)
	if a0 == a1 {
		t.Fatal("adapters share an optimizer instance")
	}
	mt.Step(8)
	if a0.t != 1 || a1.t != 1 {
		t.Fatalf("optimizer step counts wrong: %d/%d", a0.t, a1.t)
	}
}
