package config

import (
	"bytes"
	"strings"
	"testing"

	"github.com/pdftsp/pdftsp/internal/sim"
)

func TestDefaultValidatesAndBuilds(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c.Slots = 24
	c.Workload.RatePerSlot = 2
	b, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b.Cluster.NumNodes() != 8 {
		t.Fatalf("built %d nodes, want 8", b.Cluster.NumNodes())
	}
	if b.Scheduler.Name() != "pdFTSP" {
		t.Fatalf("scheduler %q", b.Scheduler.Name())
	}
	res, err := sim.Run(b.Cluster, b.Scheduler, b.Tasks, b.SimConfig)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted == 0 {
		t.Fatal("built simulation admitted nothing")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := Default()
	c.Algorithm = Algorithm{Name: "pdftsp-adaptive", Safety: 1.5, DualRule: "additive"}
	prep := 0.25
	c.Workload.PrepProb = &prep
	c.Workload.ValuePerUnit = &[2]float64{0.9, 1.3}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != c.Algorithm {
		t.Fatalf("algorithm round trip: %+v vs %+v", got.Algorithm, c.Algorithm)
	}
	if *got.Workload.PrepProb != prep || *got.Workload.ValuePerUnit != *c.Workload.ValuePerUnit {
		t.Fatal("workload round trip lost fields")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := Load(strings.NewReader(`{"slots": 10, "nodez": []}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	muts := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero slots", func(c *Config) { c.Slots = 0 }},
		{"bad model", func(c *Config) { c.Model = "bert" }},
		{"no nodes", func(c *Config) { c.Nodes = nil }},
		{"bad gpu", func(c *Config) { c.Nodes[0].GPU = "H100" }},
		{"zero count", func(c *Config) { c.Nodes[0].Count = 0 }},
		{"negative vendors", func(c *Config) { c.Vendors = -1 }},
		{"bad arrivals", func(c *Config) { c.Workload.Arrivals = "uniform" }},
		{"bad deadlines", func(c *Config) { c.Workload.Deadlines = "loose" }},
		{"negative rate", func(c *Config) { c.Workload.RatePerSlot = -1 }},
		{"bad algorithm", func(c *Config) { c.Algorithm.Name = "fifo" }},
		{"bad dual rule", func(c *Config) { c.Algorithm.DualRule = "geometric" }},
	}
	for _, m := range muts {
		c := Default()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validated", m.name)
		}
	}
}

func TestBuildEveryAlgorithm(t *testing.T) {
	for _, algo := range []string{"pdftsp", "pdftsp-adaptive", "titan", "eft", "ntm"} {
		c := Default()
		c.Slots = 12
		c.Workload.RatePerSlot = 1
		c.Algorithm.Name = algo
		c.Algorithm.TitanBudgetMS = 20
		b, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if _, err := sim.Run(b.Cluster, b.Scheduler, b.Tasks, b.SimConfig); err != nil {
			t.Fatalf("%s run: %v", algo, err)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := Default()
	c.Slots = 12
	c.Vendors = 0 // default 5
	c.Model = ""  // default gpt2-small
	c.Workload.Arrivals = ""
	c.Workload.Deadlines = ""
	b, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b.Market.NumVendors() != 5 {
		t.Fatalf("default vendors = %d", b.Market.NumVendors())
	}
	if b.Model.Name != "gpt2-small" {
		t.Fatalf("default model = %q", b.Model.Name)
	}
}
