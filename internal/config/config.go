// Package config defines the JSON configuration format for simulation
// runs — the declarative surface of cmd/pdftsp-sim. A config file pins
// down the cluster composition, the workload, the marketplace, and the
// scheduling algorithm, and Build turns it into ready-to-run objects.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/pdftsp/pdftsp/internal/baseline"
	"github.com/pdftsp/pdftsp/internal/cluster"
	"github.com/pdftsp/pdftsp/internal/core"
	"github.com/pdftsp/pdftsp/internal/gpu"
	"github.com/pdftsp/pdftsp/internal/lora"
	"github.com/pdftsp/pdftsp/internal/sim"
	"github.com/pdftsp/pdftsp/internal/task"
	"github.com/pdftsp/pdftsp/internal/timeslot"
	"github.com/pdftsp/pdftsp/internal/trace"
	"github.com/pdftsp/pdftsp/internal/vendor"
)

// NodeGroup is a homogeneous group of compute nodes.
type NodeGroup struct {
	// GPU names a catalog spec: "A100-80G", "A40-48G", "V100-32G".
	GPU string `json:"gpu"`
	// Count is the number of nodes in the group.
	Count int `json:"count"`
}

// Workload configures trace generation.
type Workload struct {
	// Arrivals is "poisson", "mlaas", "philly", or "helios".
	Arrivals string `json:"arrivals"`
	// RatePerSlot is the mean arrivals per slot.
	RatePerSlot float64 `json:"rate_per_slot"`
	// Deadlines is "tight", "medium", or "slack".
	Deadlines string `json:"deadlines"`
	// PrepProb is the probability a task needs pre-processing.
	PrepProb *float64 `json:"prep_prob,omitempty"`
	// ValuePerUnit optionally overrides the [min,max] valuation range.
	ValuePerUnit *[2]float64 `json:"value_per_unit,omitempty"`
}

// Algorithm selects and tunes a scheduler.
type Algorithm struct {
	// Name is "pdftsp", "pdftsp-adaptive", "titan", "eft", or "ntm".
	Name string `json:"name"`
	// MaskFullCells enables the capacity-aware DP extension (pdftsp).
	MaskFullCells bool `json:"mask_full_cells,omitempty"`
	// ChargeEnergy includes operational cost in payments (pdftsp).
	ChargeEnergy bool `json:"charge_energy,omitempty"`
	// DualRule is "paper", "additive", or "multiplicative" (pdftsp).
	DualRule string `json:"dual_rule,omitempty"`
	// Safety is the adaptive estimator's headroom (pdftsp-adaptive).
	Safety float64 `json:"safety,omitempty"`
	// TitanBudgetMS is the per-slot MILP budget (titan).
	TitanBudgetMS int `json:"titan_budget_ms,omitempty"`
}

// Config is a complete simulation specification.
type Config struct {
	// Slots is the horizon length (default 144).
	Slots int `json:"slots"`
	// Seed drives all randomness.
	Seed int64 `json:"seed"`
	// Model is "gpt2-small" or "gpt2-medium".
	Model string `json:"model"`
	// Nodes lists the cluster composition.
	Nodes []NodeGroup `json:"nodes"`
	// Vendors is the labor-vendor count (default 5).
	Vendors int `json:"vendors"`
	// Workload configures arrivals.
	Workload Workload `json:"workload"`
	// Algorithm selects the scheduler.
	Algorithm Algorithm `json:"algorithm"`
	// Execute runs the scaled-down multi-LoRA training batch.
	Execute bool `json:"execute,omitempty"`
}

// Default returns a runnable configuration.
func Default() Config {
	return Config{
		Slots: timeslot.DefaultHorizonSlots,
		Seed:  1,
		Model: "gpt2-small",
		Nodes: []NodeGroup{
			{GPU: gpu.A100.Name, Count: 4},
			{GPU: gpu.A40.Name, Count: 4},
		},
		Vendors: 5,
		Workload: Workload{
			Arrivals:    "poisson",
			RatePerSlot: 5,
			Deadlines:   "medium",
		},
		Algorithm: Algorithm{Name: "pdftsp"},
	}
}

// Load reads a JSON config, rejecting unknown fields so typos fail loudly.
func Load(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	return c, c.Validate()
}

// LoadFile reads a JSON config from disk.
func LoadFile(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Save writes the config as indented JSON.
func (c Config) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Validate checks the configuration before building.
func (c Config) Validate() error {
	if c.Slots <= 0 {
		return fmt.Errorf("config: slots must be positive, got %d", c.Slots)
	}
	if _, err := c.model(); err != nil {
		return err
	}
	if len(c.Nodes) == 0 {
		return fmt.Errorf("config: no node groups")
	}
	for i, g := range c.Nodes {
		if _, ok := gpu.ByName(g.GPU); !ok {
			return fmt.Errorf("config: node group %d: unknown GPU %q", i, g.GPU)
		}
		if g.Count <= 0 {
			return fmt.Errorf("config: node group %d: non-positive count %d", i, g.Count)
		}
	}
	if c.Vendors < 0 {
		return fmt.Errorf("config: negative vendor count %d", c.Vendors)
	}
	if _, err := arrivalKind(c.Workload.Arrivals); err != nil {
		return err
	}
	if _, err := deadlinePolicy(c.Workload.Deadlines); err != nil {
		return err
	}
	if c.Workload.RatePerSlot < 0 {
		return fmt.Errorf("config: negative arrival rate %v", c.Workload.RatePerSlot)
	}
	switch c.Algorithm.Name {
	case "pdftsp", "pdftsp-adaptive", "titan", "eft", "ntm":
	default:
		return fmt.Errorf("config: unknown algorithm %q", c.Algorithm.Name)
	}
	if _, err := dualRule(c.Algorithm.DualRule); err != nil {
		return err
	}
	return nil
}

func (c Config) model() (lora.ModelConfig, error) {
	switch c.Model {
	case "", "gpt2-small":
		return lora.GPT2Small(), nil
	case "gpt2-medium":
		return lora.GPT2Medium(), nil
	default:
		return lora.ModelConfig{}, fmt.Errorf("config: unknown model %q", c.Model)
	}
}

func arrivalKind(s string) (trace.ArrivalKind, error) {
	switch s {
	case "", "poisson":
		return trace.Poisson, nil
	case "mlaas":
		return trace.MLaaSLike, nil
	case "philly":
		return trace.PhillyLike, nil
	case "helios":
		return trace.HeliosLike, nil
	default:
		return 0, fmt.Errorf("config: unknown arrival process %q", s)
	}
}

func deadlinePolicy(s string) (trace.DeadlinePolicy, error) {
	switch s {
	case "tight":
		return trace.TightDeadlines, nil
	case "", "medium":
		return trace.MediumDeadlines, nil
	case "slack":
		return trace.SlackDeadlines, nil
	default:
		return 0, fmt.Errorf("config: unknown deadline policy %q", s)
	}
}

func dualRule(s string) (core.DualRule, error) {
	switch s {
	case "", "paper":
		return core.PaperRule, nil
	case "additive":
		return core.AdditiveOnly, nil
	case "multiplicative":
		return core.MultiplicativeOnly, nil
	default:
		return 0, fmt.Errorf("config: unknown dual rule %q", s)
	}
}

// Built is the runnable realization of a Config.
type Built struct {
	Horizon   timeslot.Horizon
	Model     lora.ModelConfig
	Cluster   *cluster.Cluster
	Market    *vendor.Marketplace
	Tasks     []task.Task
	Scheduler sim.Scheduler
	SimConfig sim.Config
}

// Build realizes the configuration.
func (c Config) Build() (*Built, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	h := timeslot.NewHorizon(c.Slots)
	model, _ := c.model()

	var nodes []cluster.Node
	for _, g := range c.Nodes {
		spec, _ := gpu.ByName(g.GPU)
		nodes = append(nodes, cluster.Uniform(g.Count, spec,
			lora.NodeCapUnits(model, spec, h), spec.MemGB)...)
	}
	cl, err := cluster.New(cluster.Config{Horizon: h, BaseModelGB: lora.BaseMemoryGB(model)}, nodes)
	if err != nil {
		return nil, err
	}

	nVendors := c.Vendors
	if nVendors == 0 {
		nVendors = 5
	}
	mkt, err := vendor.Standard(nVendors, c.Seed+7)
	if err != nil {
		return nil, err
	}

	tc := trace.DefaultConfig()
	tc.Seed = c.Seed
	tc.Horizon = h
	tc.RatePerSlot = c.Workload.RatePerSlot
	tc.Model = model
	tc.Arrivals, _ = arrivalKind(c.Workload.Arrivals)
	tc.Deadlines, _ = deadlinePolicy(c.Workload.Deadlines)
	if c.Workload.PrepProb != nil {
		tc.PrepProb = *c.Workload.PrepProb
	}
	if c.Workload.ValuePerUnit != nil {
		tc.ValuePerUnitMin = c.Workload.ValuePerUnit[0]
		tc.ValuePerUnitMax = c.Workload.ValuePerUnit[1]
	}
	tasks, err := trace.Generate(tc)
	if err != nil {
		return nil, err
	}

	var sched sim.Scheduler
	switch c.Algorithm.Name {
	case "pdftsp":
		opts := core.CalibrateDuals(tasks, model, cl, mkt)
		opts.MaskFullCells = c.Algorithm.MaskFullCells
		opts.ChargeEnergy = c.Algorithm.ChargeEnergy
		opts.DualRule, _ = dualRule(c.Algorithm.DualRule)
		sched, err = core.New(cl, opts)
	case "pdftsp-adaptive":
		safety := c.Algorithm.Safety
		if safety == 0 {
			safety = 1.3
		}
		opts := core.Options{
			MaskFullCells: c.Algorithm.MaskFullCells,
			ChargeEnergy:  c.Algorithm.ChargeEnergy,
		}
		opts.DualRule, _ = dualRule(c.Algorithm.DualRule)
		sched, err = core.NewAdaptive(cl, opts, safety)
	case "titan":
		budget := time.Duration(c.Algorithm.TitanBudgetMS) * time.Millisecond
		sched = baseline.NewTitan(baseline.TitanOptions{Seed: c.Seed, SolveBudget: budget})
	case "eft":
		sched = baseline.NewEFT()
	case "ntm":
		sched = baseline.NewNTM(c.Seed)
	}
	if err != nil {
		return nil, err
	}

	return &Built{
		Horizon:   h,
		Model:     model,
		Cluster:   cl,
		Market:    mkt,
		Tasks:     tasks,
		Scheduler: sched,
		SimConfig: sim.Config{Model: model, Market: mkt, Execute: c.Execute},
	}, nil
}
